#include "pipescg/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "pipescg/base/error.hpp"
#include "pipescg/krylov/solver.hpp"

namespace pipescg::obs::metrics {
namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (const char c : name)
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

bool valid_label_key(const std::string& key) {
  if (key.empty() || key.rfind("__", 0) == 0) return false;  // reserved
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(key[0])) return false;
  for (const char c : key)
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

// Label-value escaping per the exposition format: backslash, double quote,
// and line feed.
void append_escaped_label_value(std::string& out, const std::string& v) {
  for (const char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

// HELP text escaping: backslash and line feed only.
void append_escaped_help(std::string& out, const std::string& v) {
  for (const char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

// `{k1="v1",k2="v2"}` (empty string for no labels); also the series sort and
// identity key within a family.
std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    append_escaped_label_value(out, labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

// Extra labels appended to an already-rendered label set (for histogram
// `le` buckets).
std::string render_labels_with(const Labels& labels, const std::string& key,
                               const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return render_labels(extended);
}

// p-quantile from the log2 buckets, geometric interpolation inside the
// bucket (same estimator as LatencyHistogram::quantile, clamped to the
// bucket bounds since the atomic histogram tracks no exact extrema).
double histogram_quantile(const Histogram& h, double q) {
  const std::uint64_t count = h.count();
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    const std::uint64_t b = h.bucket(i);
    if (b == 0) continue;
    if (seen + b >= rank) {
      const double frac =
          static_cast<double>(rank - seen) / static_cast<double>(b);
      return LatencyHistogram::bucket_floor_seconds(i) * std::exp2(frac);
    }
    seen += b;
  }
  return LatencyHistogram::bucket_floor_seconds(Histogram::kBuckets - 1);
}

const char* type_name(int t) {
  switch (t) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "histogram";
  }
}

}  // namespace

void Counter::add(double delta) {
  PIPESCG_CHECK(delta >= 0.0, "metrics: counter add must be non-negative");
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Histogram::observe(double seconds) {
  const double ns = seconds * 1e9;
  std::size_t bucket = 0;
  if (ns >= 1.0) {
    const auto ticks = static_cast<std::uint64_t>(std::min(ns, 9.2e18));
    bucket = static_cast<std::size_t>(63 - std::countl_zero(ticks | 1U));
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + seconds,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::merge_from(const LatencyHistogram& h) {
  for (std::size_t i = 0; i < kBuckets; ++i)
    if (h.bucket(i) != 0)
      buckets_[i].fetch_add(h.bucket(i), std::memory_order_relaxed);
  count_.fetch_add(h.count(), std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + h.sum_seconds(),
                                     std::memory_order_relaxed)) {
  }
}

// One labeled series: exactly one of the three cells is live, fixed by the
// owning family's type.
struct Registry::Series {
  Labels labels;
  Counter counter;
  Gauge gauge;
  Histogram histogram;
};

struct Registry::Family {
  Type type;
  std::string help;
  // Keyed (and therefore ordered) by the rendered label set.
  std::map<std::string, std::unique_ptr<Series>> series;
};

Registry::Registry() = default;
Registry::~Registry() = default;

Registry::Series& Registry::series(const std::string& name,
                                   const std::string& help, Type type,
                                   Labels&& labels) {
  PIPESCG_CHECK(valid_name(name), "metrics: invalid metric name '" + name + "'");
  std::sort(labels.begin(), labels.end());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    PIPESCG_CHECK(valid_label_key(labels[i].first),
                  "metrics: invalid label key '" + labels[i].first + "' on '" +
                      name + "'");
    PIPESCG_CHECK(i == 0 || labels[i - 1].first != labels[i].first,
                  "metrics: duplicate label key '" + labels[i].first +
                      "' on '" + name + "'");
  }
  const std::string key = render_labels(labels);

  std::lock_guard<std::mutex> lock(mu_);
  auto [fit, inserted] = families_.try_emplace(name);
  if (inserted) {
    fit->second = std::make_unique<Family>();
    fit->second->type = type;
    fit->second->help = help;
  } else {
    PIPESCG_CHECK(fit->second->type == type,
                  "metrics: '" + name + "' already registered as " +
                      type_name(static_cast<int>(fit->second->type)));
  }
  auto [sit, series_inserted] = fit->second->series.try_emplace(key);
  if (series_inserted) {
    sit->second = std::make_unique<Series>();
    sit->second->labels = std::move(labels);
  }
  return *sit->second;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           Labels labels) {
  return series(name, help, Type::kCounter, std::move(labels)).counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       Labels labels) {
  return series(name, help, Type::kGauge, std::move(labels)).gauge;
}

Histogram& Registry::histogram(const std::string& name, const std::string& help,
                               Labels labels) {
  return series(name, help, Type::kHistogram, std::move(labels)).histogram;
}

std::string Registry::prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " ";
    append_escaped_help(out, family->help);
    out += "\n# TYPE " + name + " ";
    out += type_name(static_cast<int>(family->type));
    out += '\n';
    for (const auto& [label_key, s] : family->series) {
      switch (family->type) {
        case Type::kCounter:
          out += name + label_key + " " +
                 json::number_to_string(s->counter.value()) + "\n";
          break;
        case Type::kGauge:
          out += name + label_key + " " +
                 json::number_to_string(s->gauge.value()) + "\n";
          break;
        case Type::kHistogram: {
          // Cumulative buckets, non-empty ones only (64 log2 buckets per
          // series would dominate the exposition), closed by +Inf.
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
            const std::uint64_t b = s->histogram.bucket(i);
            if (b == 0) continue;
            cumulative += b;
            out += name + "_bucket" +
                   render_labels_with(
                       s->labels, "le",
                       json::number_to_string(
                           LatencyHistogram::bucket_floor_seconds(i + 1))) +
                   " " + std::to_string(cumulative) + "\n";
          }
          out += name + "_bucket" +
                 render_labels_with(s->labels, "le", "+Inf") + " " +
                 std::to_string(s->histogram.count()) + "\n";
          out += name + "_sum" + label_key + " " +
                 json::number_to_string(s->histogram.sum()) + "\n";
          out += name + "_count" + label_key + " " +
                 std::to_string(s->histogram.count()) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

json::Value Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Value doc = json::Value::object();
  for (const auto& [name, family] : families_) {
    json::Value fam = json::Value::object();
    fam.set("type", type_name(static_cast<int>(family->type)));
    fam.set("help", family->help);
    json::Value series_arr = json::Value::array();
    for (const auto& [label_key, s] : family->series) {
      json::Value entry = json::Value::object();
      json::Value labels = json::Value::object();
      for (const auto& [k, v] : s->labels) labels.set(k, v);
      entry.set("labels", std::move(labels));
      switch (family->type) {
        case Type::kCounter:
          entry.set("value", s->counter.value());
          break;
        case Type::kGauge:
          entry.set("value", s->gauge.value());
          break;
        case Type::kHistogram:
          entry.set("count", s->histogram.count());
          entry.set("sum_seconds", s->histogram.sum());
          entry.set("p50_seconds", histogram_quantile(s->histogram, 0.50));
          entry.set("p95_seconds", histogram_quantile(s->histogram, 0.95));
          entry.set("p99_seconds", histogram_quantile(s->histogram, 0.99));
          break;
      }
      series_arr.push_back(std::move(entry));
    }
    fam.set("series", std::move(series_arr));
    doc.set(name, std::move(fam));
  }
  return doc;
}

void Registry::write_textfile(const std::string& path) const {
  const std::string text = prometheus();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    PIPESCG_CHECK(out.good(), "metrics: cannot open '" + tmp + "' for writing");
    out << text;
    out.close();
    PIPESCG_CHECK(out.good(), "metrics: error writing '" + tmp + "'");
  }
  PIPESCG_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
                "metrics: cannot rename '" + tmp + "' to '" + path + "'");
}

// --- sampler ----------------------------------------------------------------

MetricsSampler::MetricsSampler(const Registry& registry, std::string path,
                               double period_ms)
    : registry_(registry), path_(std::move(path)), period_ms_(period_ms) {
  PIPESCG_CHECK(period_ms_ > 0.0, "metrics: sampler period must be positive");
}

MetricsSampler::~MetricsSampler() { stop(); }

void MetricsSampler::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stopping_ = false;
  running_ = true;
  thread_ = std::thread([this] { run(); });
}

void MetricsSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void MetricsSampler::flush() {
  // A monitoring tick must never take down the solve it watches; a full
  // disk or vanished directory degrades to a missed sample.
  try {
    registry_.write_textfile(path_);
    samples_.fetch_add(1, std::memory_order_relaxed);
  } catch (const Error&) {
  }
}

void MetricsSampler::run() {
  const auto period = std::chrono::duration<double, std::milli>(period_ms_);
  std::unique_lock<std::mutex> lock(mu_);
  while (!cv_.wait_for(lock, period, [this] { return stopping_; })) {
    lock.unlock();
    flush();
    lock.lock();
  }
  lock.unlock();
  flush();  // final flush: the file ends reflecting the completed state
}

// --- bridges ----------------------------------------------------------------

namespace {

Labels with(const Labels& base, std::initializer_list<Labels::value_type> add) {
  Labels out = base;
  out.insert(out.end(), add.begin(), add.end());
  return out;
}

}  // namespace

void register_stats(Registry& registry, const krylov::SolveStats& stats,
                    const Labels& base) {
  registry.gauge("pipescg_solve_iterations",
                 "CG-equivalent iterations of the completed solve", base)
      .set(static_cast<double>(stats.iterations));
  registry.gauge("pipescg_solve_converged",
                 "1 when the solve reached its tolerance", base)
      .set(stats.converged ? 1.0 : 0.0);
  registry.gauge("pipescg_solve_stagnated",
                 "1 when the residual stalled before the tolerance", base)
      .set(stats.stagnated ? 1.0 : 0.0);
  registry.gauge("pipescg_solve_breakdown",
                 "1 on scalar-work breakdown (singular s x s system)", base)
      .set(stats.breakdown ? 1.0 : 0.0);
  registry.gauge("pipescg_solve_final_rnorm",
                 "final residual norm in the convergence-test flavor", base)
      .set(stats.final_rnorm);
  registry.gauge("pipescg_solve_b_norm", "right-hand-side norm", base)
      .set(stats.b_norm);
  registry.gauge("pipescg_solve_final_s",
                 "s-step block size the solver finished with (0 when the "
                 "method has no s parameter)",
                 base)
      .set(static_cast<double>(stats.final_s));
  registry.gauge("pipescg_solve_recoveries",
                 "fault-recovery rollback-restarts during the solve", base)
      .set(static_cast<double>(stats.recoveries));
  registry.gauge("pipescg_solve_replacements",
                 "residual replacements performed (scheduled, verified-"
                 "acceptance and gap-triggered)",
                 base)
      .set(static_cast<double>(stats.replacements));
  registry.gauge("pipescg_solve_gram_breakdowns",
                 "soft-failed near-singular Gram (scalar-work) solves", base)
      .set(static_cast<double>(stats.gram_breakdowns));
  // Residual-gap monitor family (SolverOptions::gap_tol): -1 = the monitor
  // never performed a check (off, or the solve finished before the first
  // check was due).
  registry.gauge("pipescg_residual_gap",
                 "relative recurred-vs-true residual gap at the last check",
                 base)
      .set(stats.last_residual_gap);
  registry.gauge("pipescg_residual_gap_max",
                 "largest relative residual gap observed during the solve",
                 base)
      .set(stats.max_residual_gap);
  registry.gauge("pipescg_residual_gap_checks",
                 "gap checks the monitor performed", base)
      .set(static_cast<double>(stats.gap_checks));
  registry.gauge("pipescg_residual_gap_failed_replacements",
                 "gap-triggered replacements that did not close the gap",
                 base)
      .set(static_cast<double>(stats.failed_replacements));
}

void register_profile(Registry& registry, const SolveProfile& profile,
                      const Labels& base) {
  registry.gauge("pipescg_ranks", "SPMD ranks of the measured solve", base)
      .set(static_cast<double>(profile.ranks()));
  registry.gauge("pipescg_counters_uniform",
                 "1 when every rank recorded identical kernel counters "
                 "(SolveProfile::counters_uniform)",
                 base)
      .set(profile.counters_uniform() ? 1.0 : 0.0);

  double total_bytes = 0.0;
  double max_spmv_seconds = 0.0;
  for (int r = 0; r < profile.ranks(); ++r) {
    const Profiler& p = profile.rank(r);
    const Labels rank_labels = with(base, {{"rank", std::to_string(r)}});
    const Profiler::Counters& c = p.counters();
    const std::pair<const char*, std::size_t> counters[] = {
        {"pipescg_spmvs_total", c.spmvs},
        {"pipescg_pc_applies_total", c.pc_applies},
        {"pipescg_allreduces_total", c.allreduces},
        {"pipescg_iterations_total", c.iterations},
        {"pipescg_mpk_blocks_total", c.mpk_blocks},
        {"pipescg_recoveries_total", c.recoveries},
        {"pipescg_halo_epochs_total", c.halo_epochs},
        {"pipescg_halo_messages_total", c.halo_messages},
        {"pipescg_halo_volume_doubles_total", c.halo_volume_doubles},
        {"pipescg_spmv_bytes_total", c.spmv_bytes},
    };
    for (const auto& [name, value] : counters)
      registry.counter(name, "per-rank kernel counter (obs::Profiler)",
                       rank_labels)
          .add(static_cast<double>(value));

    for (std::size_t k = 0; k < kSpanKindCount; ++k) {
      const SpanKind kind = static_cast<SpanKind>(k);
      const Profiler::KindTotal t = p.total(kind);
      const Labels span_labels =
          with(rank_labels, {{"span_kind", to_string(kind)}});
      registry.counter("pipescg_span_seconds_total",
                       "measured seconds accumulated per span kind per rank",
                       span_labels)
          .add(t.seconds);
      registry.counter("pipescg_span_count_total",
                       "measured spans recorded per span kind per rank",
                       span_labels)
          .add(static_cast<double>(t.count));
    }

    // Measured kernel throughput from bytes moved (operator shape, counted
    // by DistCsr/MatrixPowers) over measured local-SPMV seconds.
    const Profiler::KindTotal spmv = p.total(SpanKind::kSpmvLocal);
    total_bytes += static_cast<double>(c.spmv_bytes);
    max_spmv_seconds = std::max(max_spmv_seconds, spmv.seconds);
    registry.gauge("pipescg_spmv_throughput_bytes_per_second",
                   "measured local-SPMV memory throughput: bytes moved "
                   "(from operator shape) / measured spmv_local seconds",
                   rank_labels)
        .set(spmv.seconds > 0.0 ? static_cast<double>(c.spmv_bytes) /
                                      spmv.seconds
                                : 0.0);
  }
  registry.gauge("pipescg_spmv_throughput_bytes_per_second",
                 "measured local-SPMV memory throughput: bytes moved "
                 "(from operator shape) / measured spmv_local seconds",
                 with(base, {{"rank", "all"}}))
      .set(max_spmv_seconds > 0.0 ? total_bytes / max_spmv_seconds : 0.0);

  for (std::size_t k = 0; k < kSpanKindCount; ++k) {
    const SpanKind kind = static_cast<SpanKind>(k);
    registry
        .histogram("pipescg_span_latency_seconds",
                   "cross-rank latency distribution per span kind",
                   with(base, {{"span_kind", to_string(kind)}}))
        .merge_from(profile.merged_histogram(kind));
  }
  registry
      .histogram("pipescg_span_latency_seconds",
                 "cross-rank latency distribution per span kind",
                 with(base, {{"span_kind", "halo_exchange"}}))
      .merge_from(profile.merged_halo_exchange_histogram());
}

void register_fault(Registry& registry, std::size_t injected_faults,
                    std::size_t recoveries, std::size_t watchdog_trips,
                    const Labels& base) {
  registry.counter("pipescg_fault_injected_total",
                   "deterministic faults fired by the --fault-spec injector",
                   base)
      .add(static_cast<double>(injected_faults));
  registry.counter("pipescg_fault_recoveries_total",
                   "rollback-restart recoveries performed by the drivers",
                   base)
      .add(static_cast<double>(recoveries));
  registry.counter("pipescg_watchdog_trips_total",
                   "comm-watchdog timeouts thrown (par::CommTimeout)", base)
      .add(static_cast<double>(watchdog_trips));
}

void register_session(Registry& registry, const SessionSnapshot& snapshot,
                      const Labels& base) {
  const auto with_kind = [&](const char* kind) {
    Labels labels = base;
    labels.emplace_back("kind", kind);
    return labels;
  };
  const char* build_help =
      "expensive per-operator builds the session performed (cold setup "
      "only; warm solves must not move these)";
  registry.counter("pipescg_session_setup_builds_total", build_help,
                   with_kind("partition"))
      .add(static_cast<double>(snapshot.partition_builds));
  registry.counter("pipescg_session_setup_builds_total", build_help,
                   with_kind("dist"))
      .add(static_cast<double>(snapshot.dist_builds));
  registry.counter("pipescg_session_setup_builds_total", build_help,
                   with_kind("mpk"))
      .add(static_cast<double>(snapshot.mpk_builds));
  registry.counter("pipescg_session_setup_builds_total", build_help,
                   with_kind("pc"))
      .add(static_cast<double>(snapshot.pc_builds));
  registry.counter("pipescg_session_setup_builds_total", build_help,
                   with_kind("team"))
      .add(static_cast<double>(snapshot.team_spawns));
  registry.gauge("pipescg_session_ranks",
                 "persistent rank-team size of the session", base)
      .set(static_cast<double>(snapshot.ranks));
  registry.gauge("pipescg_session_setup_seconds",
                 "wall cost of the session's one-time cold setup", base)
      .set(snapshot.setup_seconds);
  registry.counter("pipescg_session_solves_total",
                   "jobs the session completed (single + batched columns)",
                   base)
      .add(static_cast<double>(snapshot.solves));
  registry.counter("pipescg_session_warm_hits_total",
                   "solves served entirely from the cached operator state",
                   base)
      .add(static_cast<double>(snapshot.warm_hits));
  registry.counter("pipescg_session_team_runs_total",
                   "bodies executed on the persistent rank team", base)
      .add(static_cast<double>(snapshot.team_runs));
  registry.counter("pipescg_session_expired_total",
                   "jobs dropped because their deadline passed before "
                   "execution (or between resumed chunks)",
                   base)
      .add(static_cast<double>(snapshot.expired));
  if (snapshot.solve_latency)
    registry
        .histogram("pipescg_session_solve_latency_seconds",
                   "wall-clock latency of completed solves", base)
        .merge_from(*snapshot.solve_latency);
  if (snapshot.queue_latency)
    registry
        .histogram("pipescg_session_queue_wait_seconds",
                   "admission wait (submit to execution start) of drained "
                   "jobs",
                   base)
        .merge_from(*snapshot.queue_latency);
}

// --- live solve monitoring --------------------------------------------------

thread_local LiveSolve* LiveSolve::tls_current_ = nullptr;

LiveSolve::LiveSolve(Registry& registry, const Labels& base)
    : iteration_(registry.gauge("pipescg_live_iteration",
                                "CG-equivalent iteration of the most recent "
                                "driver checkpoint",
                                base)),
      rnorm_(registry.gauge("pipescg_live_rnorm",
                            "residual norm at the most recent checkpoint",
                            base)),
      s_(registry.gauge("pipescg_live_s",
                        "current s-step block size (degrades under recovery)",
                        base)),
      recoveries_(registry.gauge("pipescg_live_recoveries",
                                 "fault recoveries so far in the running solve",
                                 base)),
      gap_(registry.gauge("pipescg_residual_gap",
                          "relative recurred-vs-true residual gap at the "
                          "last check",
                          base)),
      checkpoints_(registry.counter("pipescg_live_checkpoints_total",
                                    "driver checkpoints observed", base)) {
  gap_.set(-1.0);  // "no check yet" sentinel, matching SolveStats
}

void LiveSolve::checkpoint(std::uint64_t iteration, double rnorm, int s,
                           std::uint64_t recoveries, double gap) {
  iteration_.set(static_cast<double>(iteration));
  rnorm_.set(rnorm);
  s_.set(static_cast<double>(s));
  recoveries_.set(static_cast<double>(recoveries));
  if (gap >= 0.0) gap_.set(gap);
  checkpoints_.inc();
}

LiveSolve::Install::Install(LiveSolve* l) : prev_(tls_current_) {
  if (l != nullptr) tls_current_ = l;
}

LiveSolve::Install::~Install() { tls_current_ = prev_; }

}  // namespace pipescg::obs::metrics
