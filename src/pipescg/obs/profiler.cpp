#include "pipescg/obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pipescg::obs {

thread_local Profiler* Profiler::tls_current_ = nullptr;

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kSpmvLocal:
      return "spmv_local";
    case SpanKind::kHaloExpose:
      return "halo_expose";
    case SpanKind::kHaloPeerRead:
      return "halo_peer_read";
    case SpanKind::kHaloClose:
      return "halo_close";
    case SpanKind::kPcApply:
      return "pc_apply";
    case SpanKind::kDotLocal:
      return "dot_local";
    case SpanKind::kAllreducePost:
      return "allreduce_post";
    case SpanKind::kAllreduceWaitBlocking:
      return "allreduce_wait_blocking";
    case SpanKind::kAllreduceWaitNonblocking:
      return "allreduce_wait_nonblocking";
    case SpanKind::kCount_:
      break;
  }
  return "?";
}

Profiler::KindTotal Profiler::total(SpanKind kind) const {
  KindTotal t;
  for (const Span& s : spans_) {
    if (s.kind == kind) {
      t.seconds += s.end - s.start;
      ++t.count;
    }
  }
  return t;
}

Profiler::Install::Install(Profiler* p) : prev_(tls_current_) {
#if !defined(PIPESCG_DISABLE_PROFILING)
  if (p != nullptr) tls_current_ = p;
#else
  (void)p;
#endif
}

Profiler::Install::~Install() { tls_current_ = prev_; }

SolveProfile::SolveProfile(int ranks) {
  const Profiler::Clock::time_point epoch = Profiler::Clock::now();
  profilers_.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) profilers_.emplace_back(r, epoch);
}

SolveProfile::Aggregate SolveProfile::aggregate(SpanKind kind) const {
  Aggregate a;
  std::vector<double> seconds;
  seconds.reserve(profilers_.size());
  for (const Profiler& p : profilers_) {
    const Profiler::KindTotal t = p.total(kind);
    seconds.push_back(t.seconds);
    a.count += t.count;
  }
  if (seconds.empty()) return a;
  std::sort(seconds.begin(), seconds.end());
  a.min = seconds.front();
  a.max = seconds.back();
  a.median = seconds[seconds.size() / 2];
  return a;
}

bool SolveProfile::counters_uniform() const {
  if (profilers_.empty()) return true;
  const Profiler::Counters& c0 = profilers_.front().counters();
  for (const Profiler& p : profilers_) {
    const Profiler::Counters& c = p.counters();
    // halo_* counters are legitimately rank-dependent (boundary ranks pull
    // fewer ghost runs) and are not part of the uniformity contract.
    if (c.spmvs != c0.spmvs || c.pc_applies != c0.pc_applies ||
        c.allreduces != c0.allreduces || c.iterations != c0.iterations ||
        c.mpk_blocks != c0.mpk_blocks)
      return false;
  }
  return true;
}

std::string SolveProfile::summary() const {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-28s %10s %12s %12s %12s\n", "span",
                "count", "min(s)", "median(s)", "max(s)");
  os << buf;
  for (std::size_t k = 0; k < kSpanKindCount; ++k) {
    const SpanKind kind = static_cast<SpanKind>(k);
    const Aggregate a = aggregate(kind);
    if (a.count == 0) continue;
    std::snprintf(buf, sizeof(buf), "  %-28s %10zu %12.3e %12.3e %12.3e\n",
                  to_string(kind), a.count, a.min, a.median, a.max);
    os << buf;
  }
  return os.str();
}

}  // namespace pipescg::obs
