#include "pipescg/obs/profiler.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace pipescg::obs {

thread_local Profiler* Profiler::tls_current_ = nullptr;

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kSpmvLocal:
      return "spmv_local";
    case SpanKind::kHaloExpose:
      return "halo_expose";
    case SpanKind::kHaloPeerRead:
      return "halo_peer_read";
    case SpanKind::kHaloClose:
      return "halo_close";
    case SpanKind::kPcApply:
      return "pc_apply";
    case SpanKind::kDotLocal:
      return "dot_local";
    case SpanKind::kAllreducePost:
      return "allreduce_post";
    case SpanKind::kAllreduceWaitBlocking:
      return "allreduce_wait_blocking";
    case SpanKind::kAllreduceWaitNonblocking:
      return "allreduce_wait_nonblocking";
    case SpanKind::kCount_:
      break;
  }
  return "?";
}

namespace {

// Bucket index for a duration: floor(log2(ns)) clamped to [0, kBuckets),
// computed with integer bit-scan so repeated adds are deterministic and
// branch-light.
std::size_t histogram_bucket(double seconds) {
  const double ns = seconds * 1e9;
  if (!(ns >= 1.0)) return 0;  // sub-ns, negative, and NaN all land in 0
  const auto ticks = static_cast<std::uint64_t>(
      std::min(ns, 9.2e18));  // clamp below 2^63 before the cast
  return static_cast<std::size_t>(63 - std::countl_zero(ticks | 1U));
}

}  // namespace

void LatencyHistogram::add(double seconds) {
  ++counts_[histogram_bucket(seconds)];
  if (count_ == 0 || seconds < min_) min_ = seconds;
  if (seconds > max_) max_ = seconds;
  sum_ += seconds;
  ++count_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  count_ += other.count_;
}

double LatencyHistogram::bucket_floor_seconds(std::size_t i) {
  return std::ldexp(1.0, static_cast<int>(i)) * 1e-9;
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, 1-based: ceil(q * count), at least 1.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts_[i] == 0) continue;
    if (seen + counts_[i] >= rank) {
      // Geometric interpolation inside [2^i, 2^(i+1)) ns.
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(counts_[i]);
      const double est = bucket_floor_seconds(i) * std::exp2(frac);
      // The estimate is a factor-of-2 interpolation; the exact extrema are
      // tracked, so clamp to them (keeps quantile(0)>=min, quantile(1)<=max).
      return std::clamp(est, min_, max_);
    }
    seen += counts_[i];
  }
  return max_;
}

Profiler::KindTotal Profiler::total(SpanKind kind) const {
  KindTotal t;
  for (const Span& s : spans_) {
    if (s.kind == kind) {
      t.seconds += s.end - s.start;
      ++t.count;
    }
  }
  return t;
}

Profiler::Install::Install(Profiler* p) : prev_(tls_current_) {
#if !defined(PIPESCG_DISABLE_PROFILING)
  if (p != nullptr) tls_current_ = p;
#else
  (void)p;
#endif
}

Profiler::Install::~Install() { tls_current_ = prev_; }

SolveProfile::SolveProfile(int ranks) {
  const Profiler::Clock::time_point epoch = Profiler::Clock::now();
  profilers_.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) profilers_.emplace_back(r, epoch);
}

SolveProfile::Aggregate SolveProfile::aggregate(SpanKind kind) const {
  Aggregate a;
  std::vector<double> seconds;
  seconds.reserve(profilers_.size());
  for (const Profiler& p : profilers_) {
    const Profiler::KindTotal t = p.total(kind);
    seconds.push_back(t.seconds);
    a.count += t.count;
  }
  if (seconds.empty()) return a;
  std::sort(seconds.begin(), seconds.end());
  a.min = seconds.front();
  a.max = seconds.back();
  a.median = seconds[seconds.size() / 2];
  return a;
}

LatencyHistogram SolveProfile::merged_histogram(SpanKind kind) const {
  LatencyHistogram h;
  for (const Profiler& p : profilers_) h.merge(p.histogram(kind));
  return h;
}

LatencyHistogram SolveProfile::merged_halo_exchange_histogram() const {
  LatencyHistogram h;
  for (const Profiler& p : profilers_) h.merge(p.halo_exchange_histogram());
  return h;
}

bool SolveProfile::counters_uniform() const {
  if (profilers_.empty()) return true;
  const Profiler::Counters& c0 = profilers_.front().counters();
  for (const Profiler& p : profilers_) {
    const Profiler::Counters& c = p.counters();
    // halo_* and spmv_bytes are legitimately rank-dependent (boundary ranks
    // pull fewer ghost runs / own fewer nonzeros) and are not part of the
    // uniformity contract.
    if (c.spmvs != c0.spmvs || c.pc_applies != c0.pc_applies ||
        c.allreduces != c0.allreduces || c.iterations != c0.iterations ||
        c.mpk_blocks != c0.mpk_blocks)
      return false;
  }
  return true;
}

std::string SolveProfile::summary() const {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-28s %10s %12s %12s %12s\n", "span",
                "count", "min(s)", "median(s)", "max(s)");
  os << buf;
  for (std::size_t k = 0; k < kSpanKindCount; ++k) {
    const SpanKind kind = static_cast<SpanKind>(k);
    const Aggregate a = aggregate(kind);
    if (a.count == 0) continue;
    std::snprintf(buf, sizeof(buf), "  %-28s %10zu %12.3e %12.3e %12.3e\n",
                  to_string(kind), a.count, a.min, a.median, a.max);
    os << buf;
  }
  return os.str();
}

}  // namespace pipescg::obs
