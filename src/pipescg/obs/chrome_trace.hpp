// Chrome trace-event JSON export (load the file in Perfetto / about:tracing).
//
// Two sources render into the same format so they are visually comparable:
//   * a measured obs::SolveProfile -- one track (tid) per SPMD rank;
//   * a modeled sim::Timeline schedule -- one track for the representative
//     rank clock plus a "network" track showing each collective in flight.
// Each source becomes one trace "process" (pid), so a single file can hold
// the measured run and its model side by side.
#pragma once

#include <span>
#include <string>

#include "pipescg/obs/json.hpp"
#include "pipescg/obs/profiler.hpp"
#include "pipescg/sim/timeline.hpp"

namespace pipescg::obs {

/// Accumulates trace events; build() yields the standard
/// {"traceEvents": [...], "displayTimeUnit": "ms"} document.
class ChromeTraceBuilder {
 public:
  ChromeTraceBuilder();

  /// Metadata: names shown on the Perfetto process/track headers.
  void name_process(int pid, const std::string& name);
  void name_thread(int pid, int tid, const std::string& name);

  /// One complete ("X") event; times in seconds, converted to microseconds.
  void add_span(int pid, int tid, const std::string& name,
                const std::string& category, double start_seconds,
                double end_seconds);

  json::Value build() const { return doc_; }

 private:
  json::Value doc_;
  json::Value* events();
};

/// Append a measured per-rank profile as process `pid`: one thread per rank,
/// spans categorized "measured".
void add_profile(ChromeTraceBuilder& builder, const SolveProfile& profile,
                 int pid, const std::string& process_name);

/// Append a modeled schedule (from sim::Timeline::evaluate with schedule
/// capture) as process `pid`: the representative rank clock on tid 0 and
/// in-flight collectives on tid 1, spans categorized "modeled".
void add_schedule(ChromeTraceBuilder& builder,
                  std::span<const sim::ScheduledSpan> schedule, int pid,
                  const std::string& process_name);

}  // namespace pipescg::obs
