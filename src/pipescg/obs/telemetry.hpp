// Per-iteration convergence telemetry.
//
// The residual history in SolveStats answers "did it converge"; this layer
// answers "how was it converging" -- per checkpoint it captures the
// residual-norm flavour, the s-step scalar work (the alpha step sizes and
// the magnitude of the B recurrence matrix), the current block size s (which
// degrades under replacement/recovery), and the running fault-recovery
// count.  That is the numerical-stability signal the pipelined s-step
// literature tracks: a collapsing alpha or an exploding ||B||_F precedes a
// residual-norm plateau by several outer iterations.
//
// Mirrors the Profiler's thread-local install discipline: the s-step
// drivers call telemetry_checkpoint() next to every residual checkpoint,
// and the hook costs exactly one thread-local null check when no telemetry
// sink is installed -- so unobserved runs stay bit-identical.  Records land
// in a fixed-capacity ring buffer (oldest dropped, drop count kept) and are
// written as JSON Lines: one self-contained object per line, greppable and
// streamable, the natural shape for per-iteration series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pipescg::obs {

/// One checkpoint snapshot.  `alpha` holds the s step sizes of the most
/// recent completed scalar work (empty before the first outer iteration);
/// `beta_fro` is the Frobenius norm of the s x s B recurrence matrix.
struct TelemetryRecord {
  std::uint64_t iteration = 0;  // CG-equivalent iteration
  double rnorm = 0.0;
  std::string norm_flavor;  // krylov::to_string(opts.norm)
  int s = 0;                // current block size (degrades under recovery)
  std::uint64_t recoveries = 0;
  std::vector<double> alpha;
  double beta_fro = 0.0;
  // Residual-gap monitor readings (SolverOptions::gap_tol): the true
  // residual norm measured this checkpoint and the relative recurred-vs-true
  // gap.  -1 = no gap check resolved at this checkpoint; the JSONL keys
  // ("true_rnorm", "gap") are emitted only when a check resolved, so
  // monitor-off runs serialize byte-identically to the historical format.
  double true_rnorm = -1.0;
  double gap = -1.0;
};

class ConvergenceTelemetry {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  explicit ConvergenceTelemetry(std::string method = "",
                                std::size_t capacity = kDefaultCapacity);

  void record(TelemetryRecord rec);

  const std::string& method() const { return method_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  /// Records overwritten because the ring filled (oldest-first eviction).
  std::size_t dropped() const { return dropped_; }

  /// Retained records in chronological order.
  std::vector<TelemetryRecord> records() const;

  /// JSON Lines: one object per retained record, newline-terminated.  When
  /// the telemetry was constructed with a method label every line carries a
  /// "method" key, so lines from several solves can share one file.
  std::string to_jsonl() const;
  void write_jsonl(const std::string& path) const;

  /// Inverse of to_jsonl (blank lines skipped); used by tests and tools.
  /// Throws base::Error on a malformed line.
  static std::vector<TelemetryRecord> parse_jsonl(std::string_view text);

  // --- thread-local installation (same discipline as Profiler) ------------

  static ConvergenceTelemetry* current() { return tls_current_; }

  /// RAII: installs a sink as the calling thread's current() and restores
  /// the previous one on destruction.  `t` may be nullptr (no-op install).
  class Install {
   public:
    explicit Install(ConvergenceTelemetry* t);
    ~Install();
    Install(const Install&) = delete;
    Install& operator=(const Install&) = delete;

   private:
    ConvergenceTelemetry* prev_;
  };

 private:
  static thread_local ConvergenceTelemetry* tls_current_;

  std::string method_;
  std::size_t capacity_;
  std::vector<TelemetryRecord> ring_;
  std::size_t head_ = 0;  // index of the oldest retained record
  std::size_t size_ = 0;
  std::size_t dropped_ = 0;
};

/// Driver-side hook: records a checkpoint into the installed sink (if any)
/// and forwards iteration/rnorm/s/recoveries (and, when a gap check
/// resolved this checkpoint, the residual gap) to the installed live
/// metrics gauges (metrics::LiveSolve::current(), if any).  Costs two
/// thread-local null checks when neither observer is installed.
void telemetry_checkpoint(std::uint64_t iteration, double rnorm,
                          std::string_view norm_flavor, int s,
                          std::uint64_t recoveries,
                          std::span<const double> alpha, double beta_fro,
                          double true_rnorm = -1.0, double gap = -1.0);

}  // namespace pipescg::obs
