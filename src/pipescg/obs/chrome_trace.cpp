#include "pipescg/obs/chrome_trace.hpp"

namespace pipescg::obs {
namespace {

json::Value metadata_event(int pid, int tid, const std::string& kind,
                           const std::string& name) {
  json::Value e = json::Value::object();
  e.set("ph", "M");
  e.set("name", kind);
  e.set("pid", pid);
  e.set("tid", tid);
  json::Value args = json::Value::object();
  args.set("name", name);
  e.set("args", std::move(args));
  return e;
}

}  // namespace

ChromeTraceBuilder::ChromeTraceBuilder() {
  doc_ = json::Value::object();
  doc_.set("traceEvents", json::Value::array());
  doc_.set("displayTimeUnit", "ms");
}

json::Value* ChromeTraceBuilder::events() { return &doc_.at("traceEvents"); }

void ChromeTraceBuilder::name_process(int pid, const std::string& name) {
  events()->push_back(metadata_event(pid, 0, "process_name", name));
}

void ChromeTraceBuilder::name_thread(int pid, int tid,
                                     const std::string& name) {
  events()->push_back(metadata_event(pid, tid, "thread_name", name));
}

void ChromeTraceBuilder::add_span(int pid, int tid, const std::string& name,
                                  const std::string& category,
                                  double start_seconds, double end_seconds) {
  json::Value e = json::Value::object();
  e.set("ph", "X");
  e.set("name", name);
  e.set("cat", category);
  e.set("pid", pid);
  e.set("tid", tid);
  e.set("ts", start_seconds * 1e6);  // microseconds
  e.set("dur", (end_seconds - start_seconds) * 1e6);
  events()->push_back(std::move(e));
}

void add_profile(ChromeTraceBuilder& builder, const SolveProfile& profile,
                 int pid, const std::string& process_name) {
  builder.name_process(pid, process_name);
  for (int r = 0; r < profile.ranks(); ++r) {
    builder.name_thread(pid, r, "rank " + std::to_string(r));
    for (const Span& s : profile.rank(r).spans())
      builder.add_span(pid, r, to_string(s.kind), "measured", s.start, s.end);
  }
}

void add_schedule(ChromeTraceBuilder& builder,
                  std::span<const sim::ScheduledSpan> schedule, int pid,
                  const std::string& process_name) {
  builder.name_process(pid, process_name);
  builder.name_thread(pid, 0, "rank (modeled)");
  builder.name_thread(pid, 1, "network (allreduces)");
  for (const sim::ScheduledSpan& s : schedule) {
    const bool network = s.kind == sim::ScheduledSpan::Kind::kAllreduce;
    std::string name = to_string(s.kind);
    if (network || s.kind == sim::ScheduledSpan::Kind::kAllreduceWait)
      name += s.blocking ? " (blocking)" : " (non-blocking)";
    builder.add_span(pid, network ? 1 : 0, name, "modeled", s.start, s.end);
  }
}

}  // namespace pipescg::obs
