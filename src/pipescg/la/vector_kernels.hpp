// Fused BLAS-1 kernels for the s-step hot loops.
//
// The s-step drivers spend their vector time in two places: the per-outer
// dot batch ((2s+1) moment pairs + s^2 cross pairs + norm extras, each pair
// a separate sweep over rank-local memory in the naive form -- ~2s+ passes
// per outer iteration) and the basis-build epilogue (copy + up to two axpys
// + a scale per new column: up to 4 passes per column).  The kernels here
// collapse each to ONE pass:
//   * dot_batch     -- i-blocked so the working set stays cache-resident
//                      across pairs: one memory pass per batch;
//   * axpy_pair     -- two accumulates into y in one read-modify-write pass;
//   * shift_combine -- the three-term-recurrence epilogue
//                      dst = (av - theta p1 - sigma p2) / gamma in one pass;
//   * shift_combine_with_dots -- shift_combine plus dot partials of the new
//                      column against existing columns, same sweep.
//
// Fusion contract (DESIGN.md section 14): every fused kernel performs the
// exact per-element floating-point operation sequence of its unfused
// reference (per-pair sequential accumulation for dots, the copy/axpy/axpy/
// scale chain for the basis step), so fused and unfused results are bitwise
// identical -- fusion changes WHEN memory is touched, never WHAT arithmetic
// runs.  set_fused_kernels_enabled(false) routes every call through the
// unfused reference loops; the parity tests and the bench_kernels
// fused-vs-unfused pairs rely on that switch.
//
// All loops take restrict-qualified pointers; Vec storage is 64-byte aligned
// (AlignedAllocator below) so the compiler's vector code runs on aligned
// streams.  The kernels themselves accept any alignment -- callers with
// plain std::vector storage (ghost scratch, benches) are fine.
#pragma once

#include <cstddef>
#include <new>
#include <span>
#include <vector>

namespace pipescg::la {

/// Thread-local memory-pass counters.  The counter test pins the headline
/// claim with these: per outer iteration the dot batch drops from
/// pairs-many sweeps (>= 2s+1) to one, the basis step from up to 4 to one.
struct KernelStats {
  std::size_t dot_batches = 0;   // batches executed (fused or not)
  std::size_t dot_sweeps = 0;    // memory passes over the dot working set
  std::size_t basis_steps = 0;   // shift_combine calls
  std::size_t basis_passes = 0;  // memory passes those steps performed
  void reset() { *this = KernelStats{}; }
};
KernelStats& kernel_stats();

/// Process-wide switch (default on).  Off = unfused reference loops, for
/// parity tests and the fused-vs-unfused benchmark pairs.
bool fused_kernels_enabled();
void set_fused_kernels_enabled(bool on);

/// RAII toggle for tests.
class FusedKernelsGuard {
 public:
  explicit FusedKernelsGuard(bool on)
      : previous_(fused_kernels_enabled()) {
    set_fused_kernels_enabled(on);
  }
  ~FusedKernelsGuard() { set_fused_kernels_enabled(previous_); }
  FusedKernelsGuard(const FusedKernelsGuard&) = delete;
  FusedKernelsGuard& operator=(const FusedKernelsGuard&) = delete;

 private:
  bool previous_;
};

/// One dot product over rank-local arrays.
struct DotView {
  const double* x;
  const double* y;
};

/// out[p] = sum_i pairs[p].x[i] * pairs[p].y[i] for i in [0, n).  Fused:
/// one i-blocked pass (per-pair accumulators carried across blocks, so each
/// pair's additions happen in the exact order of its own full-length loop).
/// Unfused: one full sweep per pair.  Bitwise-identical results either way.
void dot_batch(std::span<const DotView> pairs, std::size_t n,
               std::span<double> out);

/// y += a x (restrict-qualified reference axpy).
void axpy(double* y, double a, const double* x, std::size_t n);

/// y += a1 x1; y += a2 x2 -- one pass fused, per-element order
/// ((y + a1 x1) + a2 x2) identical to the two separate sweeps.
void axpy_pair(double* y, double a1, const double* x1, double a2,
               const double* x2, std::size_t n);

/// The shifted-basis three-term epilogue, one pass:
///   dst = (av - theta p1 [- sigma p2]) * (1 / gamma)
/// with the unfused path's guards replicated exactly: the theta term is
/// skipped when theta == 0, the sigma term when p2 == nullptr or sigma == 0,
/// the scale when gamma == 1 (monomial basis: plain copy).  dst may not
/// alias the inputs.
void shift_combine(double* dst, const double* av, double theta,
                   const double* p1, double sigma, const double* p2,
                   double gamma, std::size_t n);

/// shift_combine plus, in the same sweep, dot partials of the freshly
/// produced column: partials[k] = sum_i dst[i] * others[k][i].  The dot
/// accumulation order matches a separate sequential loop over dst, so the
/// partials are bitwise identical to computing them after the fact.
void shift_combine_with_dots(double* dst, const double* av, double theta,
                             const double* p1, double sigma, const double* p2,
                             double gamma, std::size_t n,
                             std::span<const double* const> others,
                             std::span<double> partials);

/// 64-byte-aligned allocator: Vec storage lands on cache-line/AVX-512
/// boundaries so the fused kernels run on aligned streams.
template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

using AlignedDoubles = std::vector<double, AlignedAllocator<double>>;

}  // namespace pipescg::la
