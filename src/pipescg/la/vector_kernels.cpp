#include "pipescg/la/vector_kernels.hpp"

#include <atomic>

#include "pipescg/base/error.hpp"

namespace pipescg::la {
namespace {

// Block length for the fused dot batch: 2048 doubles = 16 KiB per stream,
// so a block of every pair's two streams stays L1/L2-resident while the
// batch iterates over pairs.
constexpr std::size_t kDotBlock = 2048;

std::atomic<bool> g_fused{true};

// The shift_combine variants, dispatched once per call so the hot loops are
// branch-free and vectorizable.  Each replicates the unfused per-element
// operation sequence exactly (see the header's fusion contract).
template <bool kTheta, bool kSigma, bool kScale>
void shift_combine_impl(double* __restrict__ dst,
                        const double* __restrict__ av, double nt,
                        const double* __restrict__ p1, double ns,
                        const double* __restrict__ p2, double inv,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    double acc = av[i];
    if constexpr (kTheta) acc += nt * p1[i];
    if constexpr (kSigma) acc += ns * p2[i];
    if constexpr (kScale) acc *= inv;
    dst[i] = acc;
  }
}

using ShiftCombineFn = void (*)(double* __restrict__,
                                const double* __restrict__, double,
                                const double* __restrict__, double,
                                const double* __restrict__, double,
                                std::size_t);

ShiftCombineFn select_shift_combine(bool theta, bool sigma, bool scale) {
  static constexpr ShiftCombineFn table[8] = {
      &shift_combine_impl<false, false, false>,
      &shift_combine_impl<false, false, true>,
      &shift_combine_impl<false, true, false>,
      &shift_combine_impl<false, true, true>,
      &shift_combine_impl<true, false, false>,
      &shift_combine_impl<true, false, true>,
      &shift_combine_impl<true, true, false>,
      &shift_combine_impl<true, true, true>,
  };
  return table[(theta ? 4 : 0) + (sigma ? 2 : 0) + (scale ? 1 : 0)];
}

}  // namespace

KernelStats& kernel_stats() {
  thread_local KernelStats stats;
  return stats;
}

bool fused_kernels_enabled() {
  return g_fused.load(std::memory_order_relaxed);
}

void set_fused_kernels_enabled(bool on) {
  g_fused.store(on, std::memory_order_relaxed);
}

void dot_batch(std::span<const DotView> pairs, std::size_t n,
               std::span<double> out) {
  PIPESCG_CHECK(out.size() >= pairs.size(), "dot_batch output too small");
  KernelStats& stats = kernel_stats();
  ++stats.dot_batches;
  if (!fused_kernels_enabled()) {
    // Reference: one full sweep per pair.
    stats.dot_sweeps += pairs.size();
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const double* __restrict__ x = pairs[p].x;
      const double* __restrict__ y = pairs[p].y;
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
      out[p] = acc;
    }
    return;
  }
  // Fused: iterate blocks outermost so every pair reads the block while it
  // is cache-resident -- one pass over the working set for the whole batch.
  // Each pair's accumulator is carried across blocks in out[p], so its
  // additions happen in exactly the order of the reference loop above.
  ++stats.dot_sweeps;
  for (std::size_t p = 0; p < pairs.size(); ++p) out[p] = 0.0;
  for (std::size_t i0 = 0; i0 < n; i0 += kDotBlock) {
    const std::size_t len = std::min(kDotBlock, n - i0);
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const double* __restrict__ x = pairs[p].x + i0;
      const double* __restrict__ y = pairs[p].y + i0;
      double acc = out[p];
      for (std::size_t i = 0; i < len; ++i) acc += x[i] * y[i];
      out[p] = acc;
    }
  }
}

void axpy(double* y, double a, const double* x, std::size_t n) {
  double* __restrict__ yp = y;
  const double* __restrict__ xp = x;
  for (std::size_t i = 0; i < n; ++i) yp[i] += a * xp[i];
}

void axpy_pair(double* y, double a1, const double* x1, double a2,
               const double* x2, std::size_t n) {
  if (!fused_kernels_enabled()) {
    axpy(y, a1, x1, n);
    axpy(y, a2, x2, n);
    return;
  }
  double* __restrict__ yp = y;
  const double* __restrict__ x1p = x1;
  const double* __restrict__ x2p = x2;
  // Per element ((y + a1 x1) + a2 x2): the same two additions the separate
  // sweeps perform, in the same order -- bitwise identical, one pass.
  for (std::size_t i = 0; i < n; ++i) yp[i] = (yp[i] + a1 * x1p[i]) + a2 * x2p[i];
}

void shift_combine(double* dst, const double* av, double theta,
                   const double* p1, double sigma, const double* p2,
                   double gamma, std::size_t n) {
  const bool with_theta = theta != 0.0;
  const bool with_sigma = p2 != nullptr && sigma != 0.0;
  const bool with_scale = gamma != 1.0;
  const double inv = 1.0 / gamma;
  KernelStats& stats = kernel_stats();
  ++stats.basis_steps;
  if (!fused_kernels_enabled()) {
    // Reference: the pre-fusion kernel chain -- copy, then one sweep per
    // active term, exactly what extend_chain used to issue.
    stats.basis_passes +=
        1 + (with_theta ? 1 : 0) + (with_sigma ? 1 : 0) + (with_scale ? 1 : 0);
    for (std::size_t i = 0; i < n; ++i) dst[i] = av[i];
    if (with_theta) axpy(dst, -theta, p1, n);
    if (with_sigma) axpy(dst, -sigma, p2, n);
    if (with_scale) {
      double* __restrict__ dp = dst;
      for (std::size_t i = 0; i < n; ++i) dp[i] *= inv;
    }
    return;
  }
  ++stats.basis_passes;
  select_shift_combine(with_theta, with_sigma, with_scale)(
      dst, av, -theta, p1, -sigma, p2, inv, n);
}

void shift_combine_with_dots(double* dst, const double* av, double theta,
                             const double* p1, double sigma, const double* p2,
                             double gamma, std::size_t n,
                             std::span<const double* const> others,
                             std::span<double> partials) {
  PIPESCG_CHECK(partials.size() >= others.size(),
                "shift_combine_with_dots output too small");
  if (!fused_kernels_enabled()) {
    shift_combine(dst, av, theta, p1, sigma, p2, gamma, n);
    KernelStats& stats = kernel_stats();
    stats.dot_sweeps += others.size();
    for (std::size_t k = 0; k < others.size(); ++k) {
      const double* __restrict__ o = others[k];
      const double* __restrict__ d = dst;
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) acc += d[i] * o[i];
      partials[k] = acc;
    }
    return;
  }
  // One sweep: produce the column block by block, then accumulate each dot
  // partial over the block while it is still cache-hot.  The per-partial
  // addition order matches the sequential reference loop above.
  const bool with_theta = theta != 0.0;
  const bool with_sigma = p2 != nullptr && sigma != 0.0;
  const bool with_scale = gamma != 1.0;
  const ShiftCombineFn combine =
      select_shift_combine(with_theta, with_sigma, with_scale);
  const double inv = 1.0 / gamma;
  KernelStats& stats = kernel_stats();
  ++stats.basis_steps;
  ++stats.basis_passes;
  ++stats.dot_sweeps;
  for (std::size_t k = 0; k < others.size(); ++k) partials[k] = 0.0;
  for (std::size_t i0 = 0; i0 < n; i0 += kDotBlock) {
    const std::size_t len = std::min(kDotBlock, n - i0);
    combine(dst + i0, av + i0, -theta, p1 == nullptr ? nullptr : p1 + i0,
            -sigma, p2 == nullptr ? nullptr : p2 + i0, inv, len);
    for (std::size_t k = 0; k < others.size(); ++k) {
      const double* __restrict__ o = others[k] + i0;
      const double* __restrict__ d = dst + i0;
      double acc = partials[k];
      for (std::size_t i = 0; i < len; ++i) acc += d[i] * o[i];
      partials[k] = acc;
    }
  }
}

}  // namespace pipescg::la
