// LU factorization with partial pivoting for small dense systems.
//
// The s-step methods solve two s x s systems per outer iteration ("scalar
// work" in the paper, Alg. 2 line 7).  The paper uses LU for these; so do we.
#pragma once

#include <vector>

#include "pipescg/la/dense_matrix.hpp"

namespace pipescg::la {

/// Factorization PA = LU stored compactly; reusable for multiple right-hand
/// sides.  Throws pipescg::Error if the matrix is numerically singular.
class LuFactorization {
 public:
  explicit LuFactorization(DenseMatrix a);

  std::size_t dim() const { return lu_.rows(); }

  /// Solve A x = b.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solve A X = B column-wise.
  DenseMatrix solve(const DenseMatrix& b) const;

  /// Determinant (sign-corrected product of U diagonal).
  double determinant() const;

  /// An estimate of the reciprocal condition via diag(U) ratio; cheap
  /// ill-conditioning signal for stagnation detection in the s-step solvers.
  double diag_rcond() const;

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
};

/// One-shot convenience: solve A x = b.
std::vector<double> lu_solve(const DenseMatrix& a, const std::vector<double>& b);

}  // namespace pipescg::la
