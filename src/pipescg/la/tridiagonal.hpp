// Extreme eigenvalues of a symmetric tridiagonal matrix via Sturm-sequence
// bisection.
//
// Used for the Lanczos matrix CG builds implicitly from its alpha/beta
// coefficients: its extreme eigenvalues approximate the (preconditioned)
// operator spectrum, giving the classical free condition-number estimate
// (PETSc's KSPComputeExtremeSingularValues does the same).
#pragma once

#include <cstddef>
#include <span>
#include <utility>

namespace pipescg::la {

/// Number of eigenvalues of T strictly less than `x` (Sturm count).
/// diag has n entries, offdiag n-1.
std::size_t tridiagonal_sturm_count(std::span<const double> diag,
                                    std::span<const double> offdiag,
                                    double x);

/// (lambda_min, lambda_max) of the symmetric tridiagonal matrix, to
/// relative tolerance `tol`.
std::pair<double, double> tridiagonal_extreme_eigenvalues(
    std::span<const double> diag, std::span<const double> offdiag,
    double tol = 1e-10);

}  // namespace pipescg::la
