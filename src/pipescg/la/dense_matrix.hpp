// Small dense matrices (row-major) for the s-step "scalar work" (two s x s
// solves per outer iteration) and for multigrid coarse-grid direct solves.
//
// These matrices are tiny (s <= ~8 for the scalar work, a few hundred for
// coarse grids), so clarity beats blocking/tiling here.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "pipescg/base/error.hpp"

namespace pipescg::la {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Row-major initializer: DenseMatrix(2, 2, {a, b, c, d}).
  DenseMatrix(std::size_t rows, std::size_t cols,
              std::initializer_list<double> values);

  static DenseMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void fill(double value);

  /// this = this + alpha * other (same shape).
  void add_scaled(const DenseMatrix& other, double alpha);

  DenseMatrix transposed() const;

  /// Matrix-matrix product (checked shapes).
  friend DenseMatrix operator*(const DenseMatrix& a, const DenseMatrix& b);

  /// y = A x for dense vectors.
  std::vector<double> apply(const std::vector<double>& x) const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Max |a_ij - b_ij|; shapes must match.
  static double max_abs_diff(const DenseMatrix& a, const DenseMatrix& b);

  /// Symmetrize in place: A <- (A + A^T)/2.  Requires square.
  void symmetrize();

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace pipescg::la
