#include "pipescg/la/tridiagonal.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "pipescg/base/error.hpp"

namespace pipescg::la {

std::size_t tridiagonal_sturm_count(std::span<const double> diag,
                                    std::span<const double> offdiag,
                                    double x) {
  const std::size_t n = diag.size();
  PIPESCG_CHECK(offdiag.size() + 1 == n || (n == 0 && offdiag.empty()),
                "offdiag must have n-1 entries");
  std::size_t count = 0;
  double q = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double b2 = i == 0 ? 0.0 : offdiag[i - 1] * offdiag[i - 1];
    // Sturm recurrence on the sequence of leading-principal-minor ratios.
    double denom = q;
    if (std::abs(denom) < std::numeric_limits<double>::min())
      denom = std::copysign(std::numeric_limits<double>::min(), denom);
    q = diag[i] - x - b2 / denom;
    if (q < 0.0) ++count;
  }
  return count;
}

std::pair<double, double> tridiagonal_extreme_eigenvalues(
    std::span<const double> diag, std::span<const double> offdiag,
    double tol) {
  const std::size_t n = diag.size();
  PIPESCG_CHECK(n >= 1, "empty tridiagonal matrix");

  // Gershgorin bounds.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    double radius = 0.0;
    if (i > 0) radius += std::abs(offdiag[i - 1]);
    if (i + 1 < n) radius += std::abs(offdiag[i]);
    lo = std::min(lo, diag[i] - radius);
    hi = std::max(hi, diag[i] + radius);
  }
  const double scale = std::max({std::abs(lo), std::abs(hi), 1.0});

  auto bisect = [&](std::size_t target_count) {
    // Smallest x with sturm_count(x) >= target_count + 1 approaches
    // eigenvalue #target_count (0-based) from above.
    double a = lo - scale * 1e-12, b = hi + scale * 1e-12;
    while (b - a > tol * scale) {
      const double mid = 0.5 * (a + b);
      if (tridiagonal_sturm_count(diag, offdiag, mid) > target_count) {
        b = mid;
      } else {
        a = mid;
      }
    }
    return 0.5 * (a + b);
  };

  return {bisect(0), bisect(n - 1)};
}

}  // namespace pipescg::la
