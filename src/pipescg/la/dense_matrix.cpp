#include "pipescg/la/dense_matrix.hpp"

#include <algorithm>
#include <cmath>

namespace pipescg::la {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols,
                         std::initializer_list<double> values)
    : rows_(rows), cols_(cols), data_(values) {
  PIPESCG_CHECK(values.size() == rows * cols,
                "initializer size does not match matrix shape");
}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void DenseMatrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void DenseMatrix::add_scaled(const DenseMatrix& other, double alpha) {
  PIPESCG_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
                "add_scaled shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

DenseMatrix operator*(const DenseMatrix& a, const DenseMatrix& b) {
  PIPESCG_CHECK(a.cols_ == b.rows_, "matmul shape mismatch");
  DenseMatrix c(a.rows_, b.cols_);
  for (std::size_t i = 0; i < a.rows_; ++i) {
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols_; ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

std::vector<double> DenseMatrix::apply(const std::vector<double>& x) const {
  PIPESCG_CHECK(x.size() == cols_, "apply shape mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * x[j];
    y[i] = acc;
  }
  return y;
}

double DenseMatrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double DenseMatrix::max_abs_diff(const DenseMatrix& a, const DenseMatrix& b) {
  PIPESCG_CHECK(a.rows_ == b.rows_ && a.cols_ == b.cols_,
                "max_abs_diff shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  return m;
}

void DenseMatrix::symmetrize() {
  PIPESCG_CHECK(rows_ == cols_, "symmetrize requires square matrix");
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = i + 1; j < cols_; ++j) {
      const double v = 0.5 * ((*this)(i, j) + (*this)(j, i));
      (*this)(i, j) = v;
      (*this)(j, i) = v;
    }
}

}  // namespace pipescg::la
