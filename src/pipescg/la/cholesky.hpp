// Dense Cholesky factorization (A = L L^T) for SPD systems.
//
// Used for multigrid coarse-grid solves and in tests to validate SPD-ness of
// generated operators (a successful factorization is a constructive SPD
// certificate).
#pragma once

#include <optional>
#include <vector>

#include "pipescg/la/dense_matrix.hpp"

namespace pipescg::la {

/// Structured, recoverable failure: the matrix handed to Cholesky is not
/// (numerically) symmetric positive definite, or is singular to the
/// requested tolerance.  Subclasses Error so existing catch sites keep
/// working; the s-step scalar work catches THIS type to fail soft (return a
/// recoverable not-ok result that feeds the stagnation/recovery path)
/// instead of propagating NaNs into the iterate.
class NotSpdError : public Error {
 public:
  NotSpdError(const std::string& what, std::size_t pivot, double value)
      : Error(what), pivot_(pivot), value_(value) {}

  /// Index of the offending pivot and its (pre-sqrt) value.
  std::size_t pivot() const { return pivot_; }
  double pivot_value() const { return value_; }

 private:
  std::size_t pivot_;
  double value_;
};

class CholeskyFactorization {
 public:
  /// Throws la::NotSpdError if `a` is not (numerically) SPD.
  explicit CholeskyFactorization(DenseMatrix a);

  /// Non-throwing factorization with near-singularity detection: fails
  /// (nullopt) when any pivot is non-positive, non-finite, or smaller than
  /// `pivot_rtol` times the largest diagonal entry of `a` -- the "almost
  /// singular but LU would still produce huge garbage" regime the s-step
  /// Gram systems hit when the basis conditioning collapses.
  static std::optional<CholeskyFactorization> try_factor(
      const DenseMatrix& a, double pivot_rtol = 0.0);

  std::size_t dim() const { return l_.rows(); }

  std::vector<double> solve(const std::vector<double>& b) const;

  const DenseMatrix& lower() const { return l_; }

 private:
  struct Factored {};  // tag: `l` is already the computed factor
  CholeskyFactorization(DenseMatrix l, Factored) : l_(std::move(l)) {}

  DenseMatrix l_;
};

/// Returns true iff the dense matrix is symmetric positive definite (by
/// attempting a Cholesky factorization).
bool is_spd(const DenseMatrix& a, double symmetry_tol = 1e-12);

}  // namespace pipescg::la
