// Dense Cholesky factorization (A = L L^T) for SPD systems.
//
// Used for multigrid coarse-grid solves and in tests to validate SPD-ness of
// generated operators (a successful factorization is a constructive SPD
// certificate).
#pragma once

#include <vector>

#include "pipescg/la/dense_matrix.hpp"

namespace pipescg::la {

class CholeskyFactorization {
 public:
  /// Throws pipescg::Error if `a` is not (numerically) SPD.
  explicit CholeskyFactorization(DenseMatrix a);

  std::size_t dim() const { return l_.rows(); }

  std::vector<double> solve(const std::vector<double>& b) const;

  const DenseMatrix& lower() const { return l_; }

 private:
  DenseMatrix l_;
};

/// Returns true iff the dense matrix is symmetric positive definite (by
/// attempting a Cholesky factorization).
bool is_spd(const DenseMatrix& a, double symmetry_tol = 1e-12);

}  // namespace pipescg::la
