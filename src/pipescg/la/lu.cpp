#include "pipescg/la/lu.hpp"

#include <cmath>
#include <limits>
#include <utility>

namespace pipescg::la {

LuFactorization::LuFactorization(DenseMatrix a) : lu_(std::move(a)) {
  PIPESCG_CHECK(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest |a_ik| in column k at/below row k.
    std::size_t piv = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    PIPESCG_CHECK(best > 0.0 && std::isfinite(best),
                  "LU pivot is zero or non-finite: matrix is singular");
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j)
        std::swap(lu_(k, j), lu_(piv, j));
      std::swap(perm_[k], perm_[piv]);
      perm_sign_ = -perm_sign_;
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double l = lu_(i, k) * inv_pivot;
      lu_(i, k) = l;
      if (l == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= l * lu_(k, j);
    }
  }
}

std::vector<double> LuFactorization::solve(const std::vector<double>& b) const {
  const std::size_t n = dim();
  PIPESCG_CHECK(b.size() == n, "LU solve rhs size mismatch");
  std::vector<double> x(n);
  // Apply permutation, forward substitution with unit-lower L.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

DenseMatrix LuFactorization::solve(const DenseMatrix& b) const {
  PIPESCG_CHECK(b.rows() == dim(), "LU solve rhs rows mismatch");
  DenseMatrix x(b.rows(), b.cols());
  std::vector<double> col(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    const std::vector<double> sol = solve(col);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
  }
  return x;
}

double LuFactorization::determinant() const {
  double d = static_cast<double>(perm_sign_);
  for (std::size_t i = 0; i < dim(); ++i) d *= lu_(i, i);
  return d;
}

double LuFactorization::diag_rcond() const {
  double dmin = std::numeric_limits<double>::infinity();
  double dmax = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) {
    const double v = std::abs(lu_(i, i));
    dmin = std::min(dmin, v);
    dmax = std::max(dmax, v);
  }
  return dmax > 0.0 ? dmin / dmax : 0.0;
}

std::vector<double> lu_solve(const DenseMatrix& a,
                             const std::vector<double>& b) {
  return LuFactorization(a).solve(b);
}

}  // namespace pipescg::la
