#include "pipescg/la/cholesky.hpp"

#include <cmath>
#include <optional>
#include <string>
#include <utility>

namespace pipescg::la {
namespace {

struct PivotFailure {
  std::size_t index;
  double value;
};

// In-place lower Cholesky of `l`.  A pivot d fails when it is non-finite or
// d <= min_pivot (min_pivot 0 = the classical strict-positivity test).
// Reports the failure instead of throwing so callers can fail soft.
std::optional<PivotFailure> factor_in_place(DenseMatrix& l, double min_pivot) {
  const std::size_t n = l.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = l(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (!(d > min_pivot) || !std::isfinite(d)) return PivotFailure{j, d};
    const double ljj = std::sqrt(d);
    l(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = l(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
      l(i, j) = v * inv;
    }
    // Zero the strictly-upper part as we go so lower() is clean.
    for (std::size_t i = 0; i < j; ++i) l(i, j) = 0.0;
  }
  return std::nullopt;
}

}  // namespace

CholeskyFactorization::CholeskyFactorization(DenseMatrix a) : l_(std::move(a)) {
  PIPESCG_CHECK(l_.rows() == l_.cols(), "Cholesky requires a square matrix");
  if (const auto fail = factor_in_place(l_, 0.0)) {
    throw NotSpdError("Cholesky pivot " + std::to_string(fail->index) +
                          " non-positive: matrix is not SPD",
                      fail->index, fail->value);
  }
}

std::optional<CholeskyFactorization> CholeskyFactorization::try_factor(
    const DenseMatrix& a, double pivot_rtol) {
  if (a.rows() != a.cols() || a.rows() == 0) return std::nullopt;
  double max_diag = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    max_diag = std::max(max_diag, std::abs(a(i, i)));
  DenseMatrix l = a;
  if (factor_in_place(l, std::max(0.0, pivot_rtol * max_diag)))
    return std::nullopt;
  return CholeskyFactorization(std::move(l), Factored{});
}

std::vector<double> CholeskyFactorization::solve(
    const std::vector<double>& b) const {
  const std::size_t n = dim();
  PIPESCG_CHECK(b.size() == n, "Cholesky solve rhs size mismatch");
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l_(i, j) * y[j];
    y[i] = acc / l_(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l_(j, ii) * y[j];
    y[ii] = acc / l_(ii, ii);
  }
  return y;
}

bool is_spd(const DenseMatrix& a, double symmetry_tol) {
  if (a.rows() != a.cols()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = i + 1; j < a.cols(); ++j)
      if (std::abs(a(i, j) - a(j, i)) >
          symmetry_tol * (1.0 + std::abs(a(i, j))))
        return false;
  try {
    CholeskyFactorization chol(a);
    (void)chol;
    return true;
  } catch (const Error&) {
    return false;
  }
}

}  // namespace pipescg::la
