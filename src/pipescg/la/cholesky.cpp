#include "pipescg/la/cholesky.hpp"

#include <cmath>
#include <utility>

namespace pipescg::la {

CholeskyFactorization::CholeskyFactorization(DenseMatrix a) : l_(std::move(a)) {
  PIPESCG_CHECK(l_.rows() == l_.cols(), "Cholesky requires a square matrix");
  const std::size_t n = l_.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = l_(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    PIPESCG_CHECK(d > 0.0 && std::isfinite(d),
                  "Cholesky pivot non-positive: matrix is not SPD");
    const double ljj = std::sqrt(d);
    l_(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = l_(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= l_(i, k) * l_(j, k);
      l_(i, j) = v * inv;
    }
    // Zero the strictly-upper part as we go so lower() is clean.
    for (std::size_t i = 0; i < j; ++i) l_(i, j) = 0.0;
  }
}

std::vector<double> CholeskyFactorization::solve(
    const std::vector<double>& b) const {
  const std::size_t n = dim();
  PIPESCG_CHECK(b.size() == n, "Cholesky solve rhs size mismatch");
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l_(i, j) * y[j];
    y[i] = acc / l_(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l_(j, ii) * y[j];
    y[ii] = acc / l_(ii, ii);
  }
  return y;
}

bool is_spd(const DenseMatrix& a, double symmetry_tol) {
  if (a.rows() != a.cols()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = i + 1; j < a.cols(); ++j)
      if (std::abs(a(i, j) - a(j, i)) >
          symmetry_tol * (1.0 + std::abs(a(i, j))))
        return false;
  try {
    CholeskyFactorization chol(a);
    (void)chol;
    return true;
  } catch (const Error&) {
    return false;
  }
}

}  // namespace pipescg::la
