#include "pipescg/base/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "pipescg/base/error.hpp"

namespace pipescg {

void CliParser::add_flag(const std::string& name, const std::string& doc) {
  PIPESCG_CHECK(!options_.count(name), "duplicate option --" + name);
  Option o;
  o.doc = doc;
  o.is_flag = true;
  options_[name] = std::move(o);
  order_.push_back(name);
}

void CliParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& doc) {
  PIPESCG_CHECK(!options_.count(name), "duplicate option --" + name);
  Option o;
  o.doc = doc;
  o.value = default_value;
  options_[name] = std::move(o);
  order_.push_back(name);
}

void CliParser::add_observability_options() {
  add_flag("profile", "enable per-rank kernel profiling / counter output");
  add_flag("analyze",
           "run the overlap analyzer on the profiled spans: overlap "
           "efficiency, exposed wait, critical-path attribution, and "
           "model-vs-measured drift (implies --profile)");
  add_option("trace-out", "",
             "write a Chrome trace-event JSON file (load in Perfetto)");
  add_option("report-out", "", "write a structured JSON solve report");
  add_option("telemetry-out", "",
             "write per-iteration convergence telemetry (iter, rnorm, "
             "alpha/beta, s, recoveries) as JSON Lines");
  add_option("metrics-out", "",
             "write the unified metrics registry as Prometheus text "
             "exposition (textfile-collector compatible; atomic replace); "
             "with --metrics-period-ms the file is refreshed mid-solve");
  add_option("metrics-period-ms", "0",
             "snapshot period for --metrics-out in milliseconds: > 0 starts "
             "a sampler thread that rewrites the file every period while "
             "the solve runs (live gauges included); 0 writes once at exit");
}

void CliParser::add_mpk_option() {
  add_option("mpk", "off",
             "matrix-powers kernel for s-step basis builds: 'on' fuses each "
             "s-SPMV block into one halo exchange, 'off' keeps one exchange "
             "per SPMV (bit-identical to builds without the kernel)");
}

void CliParser::add_format_option() {
  add_option("format", "csr",
             "local SPMV storage format: 'csr' (row-pointer baseline) or "
             "'sell' (SELL-C-sigma: chunked, length-sorted, int32 indices -- "
             "bitwise-identical results at higher measured GB/s)");
}

void CliParser::add_stability_options() {
  add_option("basis", "mono",
             "s-step basis family: 'mono' (the paper's power basis), "
             "'newton' (Leja-ordered shifts) or 'chebyshev' (shifted "
             "Chebyshev polynomials) -- the shifted families keep the basis "
             "Gram matrix well conditioned at large s with the same SPMV "
             "count and allreduce schedule");
  add_option("replace-every", "0",
             "residual-replacement period in outer iterations: rebuild the "
             "recurred residual from b - A x every N outers (van der Vorst); "
             "0 = auto (16/4/1 by s), negative = never");
  add_option("gap-tol", "0",
             "relative predicted-vs-true residual gap tolerance: > 0 "
             "enables the drift monitor (periodic true-residual dot riding "
             "the existing batch), which forces a replacement past the "
             "tolerance and escalates to degrade-s after two failed "
             "replacements; 0 disables");
}

void CliParser::add_fault_options() {
  add_option("fault-spec", "",
             "';'-separated deterministic fault specs "
             "(key=value pairs: kind=slow|sdc|stall|die, rank, "
             "target=spmv|pc|allreduce|halo, iter, bits, bit, factor, ms, "
             "seed); empty disables injection");
  add_option("watchdog-ms", "30000",
             "comm watchdog timeout in milliseconds: a rank spinning in a "
             "collective past this deadline throws CommTimeout with a state "
             "dump instead of hanging (<= 0 disables)");
}

bool CliParser::mpk_enabled() const {
  const std::string v = str("mpk");
  PIPESCG_CHECK(v == "on" || v == "off", "--mpk expects on|off, got '" + v + "'");
  return v == "on";
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    PIPESCG_CHECK(arg.rfind("--", 0) == 0, "unexpected positional arg: " + arg);
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(arg);
    PIPESCG_CHECK(it != options_.end(),
                  "unknown option --" + arg + "\n" + help());
    Option& o = it->second;
    if (o.is_flag) {
      PIPESCG_CHECK(!has_value, "flag --" + arg + " does not take a value");
      o.flag_set = true;
    } else {
      if (!has_value) {
        PIPESCG_CHECK(i + 1 < argc, "option --" + arg + " needs a value");
        value = argv[++i];
      }
      o.value = value;
    }
  }
  return true;
}

const CliParser::Option& CliParser::lookup(const std::string& name) const {
  auto it = options_.find(name);
  PIPESCG_CHECK(it != options_.end(), "option --" + name + " not registered");
  return it->second;
}

bool CliParser::flag(const std::string& name) const {
  const Option& o = lookup(name);
  PIPESCG_CHECK(o.is_flag, "--" + name + " is not a flag");
  return o.flag_set;
}

std::string CliParser::str(const std::string& name) const {
  const Option& o = lookup(name);
  PIPESCG_CHECK(!o.is_flag, "--" + name + " is a flag");
  return o.value;
}

std::int64_t CliParser::integer(const std::string& name) const {
  const std::string v = str(name);
  char* end = nullptr;
  const long long r = std::strtoll(v.c_str(), &end, 10);
  PIPESCG_CHECK(end && *end == '\0' && !v.empty(),
                "--" + name + " expects an integer, got '" + v + "'");
  return static_cast<std::int64_t>(r);
}

double CliParser::real(const std::string& name) const {
  const std::string v = str(name);
  char* end = nullptr;
  const double r = std::strtod(v.c_str(), &end);
  PIPESCG_CHECK(end && *end == '\0' && !v.empty(),
                "--" + name + " expects a real number, got '" + v + "'");
  return r;
}

std::string CliParser::help() const {
  std::ostringstream os;
  os << program_ << " - " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& o = options_.at(name);
    os << "  --" << name;
    if (!o.is_flag) os << " <value> (default: " << o.value << ")";
    os << "\n      " << o.doc << "\n";
  }
  os << "  --help\n      print this message\n";
  return os.str();
}

}  // namespace pipescg
