#include "pipescg/base/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pipescg {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;
thread_local int g_rank = -1;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DBG";
    case LogLevel::kInfo:
      return "INF";
    case LogLevel::kWarn:
      return "WRN";
    case LogLevel::kError:
      return "ERR";
  }
  return "???";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_rank(int rank) { g_rank = rank < 0 ? -1 : rank; }

int log_rank() { return g_rank; }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  // One fprintf per line under the mutex: the whole line (prefix + optional
  // rank tag + message + newline) is emitted atomically.
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_rank >= 0) {
    std::fprintf(stderr, "[pipescg %s r%d] %s\n", level_tag(level), g_rank,
                 msg.c_str());
  } else {
    std::fprintf(stderr, "[pipescg %s] %s\n", level_tag(level), msg.c_str());
  }
}

}  // namespace pipescg
