#include "pipescg/base/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pipescg {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DBG";
    case LogLevel::kInfo:
      return "INF";
    case LogLevel::kWarn:
      return "WRN";
    case LogLevel::kError:
      return "ERR";
  }
  return "???";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[pipescg %s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace pipescg
