// Wall clock timing utilities.
#pragma once

#include <chrono>

namespace pipescg {

/// Monotonic wall clock timer with second resolution as double.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pipescg
