// Wall clock timing utilities.
#pragma once

#include <chrono>

namespace pipescg {

/// Monotonic wall clock timer with second resolution as double.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// RAII timer that adds the scope's elapsed seconds to an accumulator on
/// destruction, so repeated entries into the same region sum up:
///
///   double spmv_seconds = 0.0;
///   for (...) { ScopedTimer t(spmv_seconds); a.apply(x, y); }
class ScopedTimer {
 public:
  explicit ScopedTimer(double& accumulator) : accumulator_(accumulator) {}
  ~ScopedTimer() { accumulator_ += timer_.seconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds elapsed so far in this scope (not yet accumulated).
  double seconds() const { return timer_.seconds(); }

 private:
  double& accumulator_;
  WallTimer timer_;
};

}  // namespace pipescg
