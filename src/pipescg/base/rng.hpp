// Deterministic pseudo-random number generation.
//
// All stochastic inputs in the library (synthetic matrices, test vectors) are
// seeded explicitly so every run is bit-reproducible.  We use SplitMix64 for
// seeding and xoshiro256**-style generation via std::mt19937_64 would also be
// fine, but a self-contained generator avoids libstdc++ distribution
// differences across versions.
#pragma once

#include <cstdint>

namespace pipescg {

/// SplitMix64: tiny, fast, high-quality 64-bit generator.  Used both directly
/// and to seed derived streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n).  n must be positive.
  std::uint64_t next_below(std::uint64_t n);

  /// Standard normal via Box-Muller (uses two uniforms per pair; caches one).
  double next_normal();

  /// Derive an independent stream for substream `index`.
  Rng split(std::uint64_t index) const;

 private:
  std::uint64_t state_;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace pipescg
