#include "pipescg/base/rng.hpp"

#include <cmath>

#include "pipescg/base/error.hpp"

namespace pipescg {

std::uint64_t Rng::next_below(std::uint64_t n) {
  PIPESCG_CHECK(n > 0, "next_below requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::next_normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; guard against log(0).
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

Rng Rng::split(std::uint64_t index) const {
  Rng seeder(state_ ^ (0xd1342543de82ef95ull * (index + 1)));
  return Rng(seeder.next_u64());
}

}  // namespace pipescg
