#include "pipescg/base/timer.hpp"

// WallTimer is header-only; this TU anchors the target.
