// Small command line parser used by the examples and bench harnesses.
//
// Supports `--name value` and `--name=value` forms plus boolean flags
// (`--flag` sets true).  Unknown options raise an error listing known ones,
// so every binary self-documents via --help.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pipescg {

class CliParser {
 public:
  CliParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Register options before parse().  `doc` appears in --help output.
  void add_flag(const std::string& name, const std::string& doc);
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& doc);

  /// Register the standard observability flags shared by the examples and
  /// bench harnesses (see obs/):
  ///   --profile           enable per-rank kernel profiling / counter output
  ///   --trace-out <path>  write a Chrome trace-event JSON file (Perfetto)
  ///   --report-out <path> write a structured JSON solve report
  ///   --metrics-out <path>       write Prometheus text exposition
  ///   --metrics-period-ms <ms>   mid-solve snapshot period (0 = at exit)
  void add_observability_options();

  /// Register the matrix-powers toggle shared by the examples/benches:
  ///   --mpk on|off   route s-step basis builds through the matrix-powers
  ///                  kernel (one halo exchange per s-SPMV block) or the
  ///                  plain per-SPMV halo path (default, bit-identical to
  ///                  builds without the kernel)
  void add_mpk_option();

  /// Value of --mpk as a bool; throws on values other than on/off.
  bool mpk_enabled() const;

  /// Register the sparse-format toggle shared by the examples/benches:
  ///   --format csr|sell   local SPMV storage: CSR (default) or SELL-C-sigma
  ///                       (bitwise-identical results, higher measured GB/s;
  ///                       parse via sparse::parse_sparse_format)
  void add_format_option();

  /// Register the numerical-stability options shared by the s-step
  /// examples/benches (applied via krylov::apply_stability_cli):
  ///   --basis mono|newton|chebyshev  s-step basis family (default mono)
  ///   --replace-every <N>  residual-replacement period in outer iterations
  ///                        (0 = auto, < 0 = never)
  ///   --gap-tol <X>        predicted-vs-true residual gap tolerance; > 0
  ///                        enables the drift monitor + forced replacement
  void add_stability_options();

  /// Register the fault-injection options shared by the examples/benches
  /// (see fault/spec.hpp for the full --fault-spec grammar):
  ///   --fault-spec <spec[;spec...]>  inject deterministic faults, e.g.
  ///       rank=2:kind=slow:factor=8
  ///       kind=sdc:target=spmv:iter=40:bits=1
  ///       kind=stall:target=allreduce:iter=30:ms=500
  ///       kind=die:rank=1:iter=25
  ///   --watchdog-ms <ms>  comm watchdog timeout (<= 0 disables)
  void add_fault_options();

  /// Parse argv.  Returns false if --help was requested (help printed).
  /// Throws pipescg::Error on malformed/unknown arguments.
  bool parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  std::string str(const std::string& name) const;
  std::int64_t integer(const std::string& name) const;
  double real(const std::string& name) const;

  std::string help() const;

 private:
  struct Option {
    std::string doc;
    std::string value;
    bool is_flag = false;
    bool flag_set = false;
  };

  const Option& lookup(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace pipescg
