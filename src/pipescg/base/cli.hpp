// Small command line parser used by the examples and bench harnesses.
//
// Supports `--name value` and `--name=value` forms plus boolean flags
// (`--flag` sets true).  Unknown options raise an error listing known ones,
// so every binary self-documents via --help.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pipescg {

class CliParser {
 public:
  CliParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Register options before parse().  `doc` appears in --help output.
  void add_flag(const std::string& name, const std::string& doc);
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& doc);

  /// Register the standard observability flags shared by the examples and
  /// bench harnesses (see obs/):
  ///   --profile           enable per-rank kernel profiling / counter output
  ///   --trace-out <path>  write a Chrome trace-event JSON file (Perfetto)
  ///   --report-out <path> write a structured JSON solve report
  void add_observability_options();

  /// Parse argv.  Returns false if --help was requested (help printed).
  /// Throws pipescg::Error on malformed/unknown arguments.
  bool parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  std::string str(const std::string& name) const;
  std::int64_t integer(const std::string& name) const;
  double real(const std::string& name) const;

  std::string help() const;

 private:
  struct Option {
    std::string doc;
    std::string value;
    bool is_flag = false;
    bool flag_set = false;
  };

  const Option& lookup(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace pipescg
