// Minimal leveled logger.  Thread-safe for interleaved lines; intended for
// harness/diagnostic output, not for hot loops.
#pragma once

#include <sstream>
#include <string>

namespace pipescg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Tag every line emitted by the *calling thread* with an SPMD rank
/// (rendered as "r<rank>"), so interleaved lines from a par::Team body are
/// attributable.  Thread-local; a negative rank clears the tag.  par::Team
/// sets this automatically for its rank threads.
void set_log_rank(int rank);
int log_rank();

/// Emit one line at `level` (newline appended).  The full line -- prefix,
/// optional rank tag, message, newline -- is written atomically under a
/// mutex, so concurrent callers never interleave within a line.
void log_line(LogLevel level, const std::string& msg);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace pipescg

#define PIPESCG_LOG_DEBUG ::pipescg::detail::LogStream(::pipescg::LogLevel::kDebug)
#define PIPESCG_LOG_INFO ::pipescg::detail::LogStream(::pipescg::LogLevel::kInfo)
#define PIPESCG_LOG_WARN ::pipescg::detail::LogStream(::pipescg::LogLevel::kWarn)
#define PIPESCG_LOG_ERROR ::pipescg::detail::LogStream(::pipescg::LogLevel::kError)
