#include "pipescg/base/error.hpp"

#include <sstream>

namespace pipescg {

std::string format_location(const char* file, int line) {
  std::ostringstream os;
  // Strip leading directories for readability.
  std::string f(file);
  auto pos = f.find_last_of('/');
  if (pos != std::string::npos) f = f.substr(pos + 1);
  os << f << ":" << line;
  return os.str();
}

namespace detail {

void throw_error(const char* file, int line, const char* cond,
                 const std::string& msg) {
  std::ostringstream os;
  os << "pipescg error [" << format_location(file, line) << "] "
     << "check `" << cond << "` failed: " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace pipescg
