// Error handling for the pipescg library.
//
// The library reports programmer errors and unsatisfiable inputs via
// pipescg::Error exceptions.  Hot numerical loops are exception-free; checks
// are performed at API boundaries (construction, configuration, solve entry).
#pragma once

#include <stdexcept>
#include <string>

namespace pipescg {

/// Exception type thrown by all pipescg components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const char* cond,
                              const std::string& msg);
}  // namespace detail

/// Format a diagnostic message with printf-free streaming-ish concatenation.
std::string format_location(const char* file, int line);

}  // namespace pipescg

/// Check a precondition/invariant; throws pipescg::Error with location info.
/// Usage: PIPESCG_CHECK(n > 0, "matrix dimension must be positive");
#define PIPESCG_CHECK(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::pipescg::detail::throw_error(__FILE__, __LINE__, #cond, (msg));   \
    }                                                                     \
  } while (false)

/// Unconditional failure.
#define PIPESCG_FAIL(msg) \
  ::pipescg::detail::throw_error(__FILE__, __LINE__, "fail", (msg))
