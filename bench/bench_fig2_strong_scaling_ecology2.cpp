// Figure 2 reproduction: strong scaling on the ecology2 matrix (here: the
// documented synthetic surrogate -- see DESIGN.md "Substitutions"; drop in
// the real SuiteSparse file with --matrix).
//
// Paper setting: 1M unknowns, Jacobi, rtol 1e-2 (the s-step pipelined
// variants stagnate before 1e-5 on this ill-conditioned system, paper
// Section VI-B), s = 3, up to 120 nodes.
#include <cstdio>
#include <fstream>

#include "pipescg/base/cli.hpp"
#include "pipescg/bench_support/figures.hpp"
#include "pipescg/obs/metrics.hpp"
#include "pipescg/obs/telemetry.hpp"
#include "pipescg/par/comm.hpp"
#include "pipescg/sparse/matrix_market.hpp"
#include "pipescg/sparse/surrogates.hpp"

using namespace pipescg;

int main(int argc, char** argv) {
  CliParser cli("bench_fig2_strong_scaling_ecology2",
                "Fig. 2: strong scaling on the ecology2(-like) matrix");
  cli.add_option("nx", "256", "grid width of the surrogate (paper: 999)");
  cli.add_option("ny", "256", "grid height of the surrogate (paper: 1001)");
  cli.add_option("matrix", "", "optional Matrix Market file to use instead");
  cli.add_option("rtol", "1e-2", "relative tolerance (paper: 1e-2)");
  cli.add_option("s", "3", "s-step depth");
  cli.add_option("max-nodes", "120", "largest node count in the sweep");
  cli.add_option("csv", "", "optional CSV output path for the figure data");
  cli.add_option("trace-nodes", "40",
                 "node count the modeled --trace-out schedule is priced at");
  cli.add_option("bench-json", "",
                 "write machine-readable BENCH_<name>.json (per-method "
                 "iterations, modeled overlap efficiency, speedups)");
  cli.add_observability_options();
  if (!cli.parse(argc, argv)) return 0;

  sparse::CsrMatrix a =
      cli.str("matrix").empty()
          ? sparse::make_ecology2_like(
                static_cast<std::size_t>(cli.integer("nx")),
                static_cast<std::size_t>(cli.integer("ny")))
          : sparse::read_matrix_market_file(cli.str("matrix"));
  precond::JacobiPreconditioner jacobi(a);

  krylov::SolverOptions opts;
  opts.rtol = cli.real("rtol");
  opts.s = static_cast<int>(cli.integer("s"));
  opts.max_iterations = 200000;
  opts.norm = krylov::NormType::kPreconditioned;

  const std::vector<std::string> methods = {
      "pcg",  "pipecg",   "pipecg3",  "pipecg-oati",
      "pscg", "pipe-scg", "pipe-pscg"};

  std::printf("Fig. 2: %s, %zu unknowns, %zu nnz, jacobi, rtol %.1e, s=%d\n",
              a.name().c_str(), a.rows(), a.nnz(), opts.rtol, opts.s);
  const std::string metrics_out = cli.str("metrics-out");
  const double metrics_period_ms = cli.real("metrics-period-ms");
  auto registry = !metrics_out.empty()
                      ? std::make_unique<obs::metrics::Registry>()
                      : nullptr;
  auto sampler = registry && metrics_period_ms > 0.0
                     ? std::make_unique<obs::metrics::MetricsSampler>(
                           *registry, metrics_out, metrics_period_ms)
                     : nullptr;
  if (sampler) sampler->start();

  std::vector<bench::RunRecord> runs;
  std::string telemetry;
  for (const std::string& m : methods) {
    obs::ConvergenceTelemetry telem(m);
    const obs::metrics::Labels labels = {{"method", m}, {"bench", "fig2"}};
    auto live = registry ? std::make_unique<obs::metrics::LiveSolve>(*registry,
                                                                     labels)
                         : nullptr;
    {
      obs::ConvergenceTelemetry::Install install(
          cli.str("telemetry-out").empty() ? nullptr : &telem);
      const obs::metrics::LiveSolve::Install live_install(live.get());
      runs.push_back(bench::run_method(m, a, &jacobi, opts));
    }
    if (registry)
      obs::metrics::register_stats(*registry, runs.back().stats, labels);
    telemetry += telem.to_jsonl();
  }
  bench::print_run_summaries(runs);

  const sim::Timeline timeline(sim::MachineModel::cray_xc40_like());
  const bench::ScalingReport report = bench::make_scaling_report(
      runs, timeline,
      bench::node_sweep(static_cast<int>(cli.integer("max-nodes"))), "pcg");
  bench::print_scaling_report(report,
                              "Fig. 2: speedup vs PCG@1node, ecology2-like");
  bench::write_scaling_csv(report, cli.str("csv"));
  if (cli.flag("profile")) bench::print_run_counters(runs);
  const int trace_nodes = static_cast<int>(cli.integer("trace-nodes"));
  const int ranks = timeline.machine().ranks_for_nodes(trace_nodes);
  if (cli.flag("analyze")) bench::print_modeled_overlap(runs, timeline, ranks);
  bench::write_modeled_trace(runs, timeline, trace_nodes,
                             cli.str("trace-out"));
  bench::write_bench_report(runs, report,
                            "Fig. 2: strong scaling, ecology2-like",
                            cli.str("report-out"));
  bench::write_bench_json("fig2", runs, report, timeline, ranks, a.stats(),
                          cli.str("bench-json"));
  if (!cli.str("telemetry-out").empty()) {
    std::ofstream os(cli.str("telemetry-out"), std::ios::binary);
    os << telemetry;
    std::printf("wrote telemetry to %s\n", cli.str("telemetry-out").c_str());
  }
  if (registry) {
    obs::metrics::register_fault(*registry, /*injected_faults=*/0,
                                 /*recoveries=*/0, par::comm_watchdog_trips(),
                                 {{"bench", "fig2"}});
    if (sampler) {
      sampler->stop();
      std::printf("wrote %zu metrics snapshots to %s\n", sampler->samples(),
                  metrics_out.c_str());
    } else {
      registry->write_textfile(metrics_out);
      std::printf("wrote metrics exposition to %s\n", metrics_out.c_str());
    }
  }

  // Paper landmarks (real ecology2, 120 nodes): PIPE-PsCG 2.9x vs PCG,
  // 2.15x vs PIPECG, 1.4x vs PIPECG3, 1.2x vs OATI, 2.43x vs PsCG.
  return 0;
}
