// Figure 5 reproduction: solver accuracy/performance -- relative residual as
// a function of (modeled) wall time at 80 nodes for the 125-pt Poisson
// problem.
//
// Paper finding: all methods reach rtol * ||b|| (rtol = 1e-5), PIPE-PsCG
// fastest and PCG slowest; i.e. for the tolerances real applications use
// (PETSc default 1e-5, OpenFOAM pressure solves 1e-2), the pipelined s-step
// method is the best choice.
#include <algorithm>
#include <cstdio>

#include "pipescg/base/cli.hpp"
#include "pipescg/bench_support/figures.hpp"
#include "pipescg/sparse/poisson125.hpp"

using namespace pipescg;

int main(int argc, char** argv) {
  CliParser cli("bench_fig5_accuracy",
                "Fig. 5: relative residual vs time at 80 nodes");
  cli.add_option("n", "64", "grid points per dimension (paper: 100)");
  cli.add_option("rtol", "1e-5", "relative tolerance");
  cli.add_option("s", "3", "s-step depth");
  cli.add_option("nodes", "80", "node count");
  if (!cli.parse(argc, argv)) return 0;

  const std::size_t n = static_cast<std::size_t>(cli.integer("n"));
  const int nodes = static_cast<int>(cli.integer("nodes"));
  const auto op = sparse::make_poisson125_operator(n);
  const auto jacobi = bench::make_stencil_jacobi(*op);

  krylov::SolverOptions opts;
  opts.rtol = cli.real("rtol");
  opts.s = static_cast<int>(cli.integer("s"));
  opts.max_iterations = 100000;
  opts.norm = krylov::NormType::kPreconditioned;

  const std::vector<std::string> methods = {
      "pcg", "pipecg", "pipecg3", "pipecg-oati", "pscg", "pipe-pscg"};
  const sim::Timeline timeline(sim::MachineModel::cray_xc40_like());
  const int ranks = timeline.machine().ranks_for_nodes(nodes);

  std::printf("Fig. 5: 125-pt Poisson %zu^3 at %d nodes, rtol %.0e\n", n,
              nodes, opts.rtol);

  struct Series {
    std::string method;
    std::vector<sim::TimelineResult::Mark> marks;
    double total_ms;
    double b_norm;
  };
  std::vector<Series> series;
  for (const std::string& m : methods) {
    const bench::RunRecord run = bench::run_method(m, *op, jacobi.get(), opts);
    const sim::TimelineResult tr = timeline.evaluate(run.trace, ranks);
    series.push_back(
        Series{m, tr.marks, tr.seconds * 1e3, run.stats.b_norm});
  }

  std::printf("\ntime to reach rtol*||b|| (modeled, %d nodes):\n", nodes);
  for (const Series& s : series)
    std::printf("  %-12s %10.3f ms  (%zu residual checkpoints)\n",
                s.method.c_str(), s.total_ms, s.marks.size());

  std::printf("\nrelative residual vs time [ms] (sampled checkpoints):\n");
  for (const Series& s : series) {
    std::printf("%-12s", s.method.c_str());
    const std::size_t count = s.marks.size();
    const std::size_t stride = std::max<std::size_t>(1, count / 8);
    for (std::size_t i = 0; i < count; i += stride) {
      std::printf(" %7.2f:%8.1e", s.marks[i].time * 1e3,
                  s.marks[i].residual / s.b_norm);
    }
    if (count > 0)
      std::printf(" %7.2f:%8.1e", s.marks.back().time * 1e3,
                  s.marks.back().residual / s.b_norm);
    std::printf("\n");
  }
  std::printf("\n(expected shape per the paper: every curve reaches the "
              "threshold; PIPE-PsCG first, PCG last)\n");
  return 0;
}
