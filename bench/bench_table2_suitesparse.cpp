// Table II reproduction: PCG, PIPECG, PIPECG-OATI and the Hybrid-pipelined
// method on the SuiteSparse trio (surrogates; see DESIGN.md) at 120 nodes,
// rtol 1e-5, speedups relative to PCG on one node.
//
// Paper: Hybrid-pipelined wins on all three matrices, with the margin over
// OATI growing with nnz (Serena, 46 nnz/row, benefits most because more
// computation is available to overlap).
#include <cstdio>

#include "pipescg/base/cli.hpp"
#include "pipescg/bench_support/figures.hpp"
#include "pipescg/sparse/surrogates.hpp"

using namespace pipescg;

int main(int argc, char** argv) {
  CliParser cli("bench_table2_suitesparse",
                "Table II: SuiteSparse(-like) matrices at 120 nodes");
  cli.add_option("nodes", "120", "node count");
  cli.add_option("rtol", "1e-5", "relative tolerance");
  cli.add_option("scale", "1", "1 = reduced sizes, 4 = paper-sized (slow)");
  if (!cli.parse(argc, argv)) return 0;
  const int nodes = static_cast<int>(cli.integer("nodes"));
  const double rtol = cli.real("rtol");
  const std::size_t scale = static_cast<std::size_t>(cli.integer("scale"));

  struct Workload {
    const char* label;
    sparse::CsrMatrix matrix;
  };
  std::vector<Workload> workloads;
  workloads.push_back(
      {"ecology2-like",
       sparse::make_ecology2_like(250 * scale, 250 * scale)});
  workloads.push_back(
      {"thermal2-like",
       sparse::make_thermal2_like(277 * scale, 277 * scale)});
  workloads.push_back({"serena-like", sparse::make_serena_like(28 * scale)});

  const std::vector<std::string> methods = {"pcg", "pipecg", "pipecg-oati",
                                            "hybrid"};
  const sim::Timeline timeline(sim::MachineModel::cray_xc40_like());

  std::printf("Table II: speedups vs PCG@1node at %d nodes, rtol %.0e\n",
              nodes, rtol);
  std::printf("%-15s %9s %10s | ", "matrix", "N", "nnz");
  for (const auto& m : methods) std::printf("%12s", m.c_str());
  std::printf("\n");

  for (Workload& w : workloads) {
    precond::JacobiPreconditioner jacobi(w.matrix);
    krylov::SolverOptions opts;
    opts.rtol = rtol;
    opts.max_iterations = 500000;
    opts.norm = krylov::NormType::kPreconditioned;

    std::printf("%-15s %9zu %10zu | ", w.label, w.matrix.rows(),
                w.matrix.nnz());
    double baseline = 0.0;
    for (const std::string& m : methods) {
      const bench::RunRecord run =
          bench::run_method(m, w.matrix, &jacobi, opts);
      if (m == "pcg") baseline = timeline.seconds_at_nodes(run.trace, 1);
      if (!run.stats.converged) {
        std::printf("%12s", "n/c");
        continue;
      }
      const double t = timeline.seconds_at_nodes(run.trace, nodes);
      std::printf("%11.2fx", baseline / t);
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper Table II (real matrices): ecology2 1.52/2.30/3.87/3.96; "
      "thermal2 2.15/3.04/3.52/4.16; Serena 2.23/4.47/7.15/8.28\n"
      "(expected shape: hybrid best everywhere; margin grows with nnz)\n");
  return 0;
}
