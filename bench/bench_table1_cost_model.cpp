// Table I reproduction: analytic cost comparison of the PCG variants per s
// iterations, evaluated at a concrete Cray-XC40-like operating point, plus a
// cross-check of the formulas against kernel counters recorded from the real
// solver implementations.
#include <cstdio>
#include <iostream>

#include "pipescg/base/cli.hpp"
#include "pipescg/bench_support/figures.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/sim/cost_table.hpp"
#include "pipescg/sim/machine_model.hpp"
#include "pipescg/sparse/poisson125.hpp"

using namespace pipescg;

int main(int argc, char** argv) {
  CliParser cli("bench_table1_cost_model",
                "Reproduces Table I of the paper: analytic per-s-iteration "
                "cost of the PCG variants, plus measured kernel counters");
  cli.add_option("s", "3", "s-step depth");
  cli.add_option("nodes", "120", "node count for the operating point");
  cli.add_option("n", "24", "grid size per dimension for the counter check");
  if (!cli.parse(argc, argv)) return 0;
  const int s = static_cast<int>(cli.integer("s"));
  const int nodes = static_cast<int>(cli.integer("nodes"));
  const std::size_t n = static_cast<std::size_t>(cli.integer("n"));

  const sim::MachineModel machine = sim::MachineModel::cray_xc40_like();
  const auto op = sparse::make_poisson125_operator(n);
  const int ranks = machine.ranks_for_nodes(nodes);
  const double spmv = machine.spmv_seconds(op->stats(), ranks);
  const double pc = machine.compute_seconds(
      static_cast<double>(op->rows()), 24.0 * op->rows(), ranks);  // jacobi
  const double g = machine.allreduce_seconds(ranks, 2 * s + s * s + 3);

  std::printf("=== Table I: cost analysis of PCG variants ===\n");
  std::printf("operating point: %d nodes (%d ranks), 125-pt Poisson %zu^3\n",
              nodes, ranks, n);
  std::printf("G = %.3g us, PC(jacobi) = %.3g us, SPMV = %.3g us\n\n",
              g * 1e6, pc * 1e6, spmv * 1e6);
  sim::print_cost_table(std::cout, s, g, pc, spmv);

  // The matrix-powers trade at the same operating point: one deep halo
  // exchange per s-SPMV block versus s shallow ones (see DESIGN.md
  // section 8).  At latency-dominated rank counts the block wins for all
  // s >= 2; the redundant ghost-row flops eat the gain back as the local
  // blocks shrink.
  std::printf("\n");
  sim::print_spmv_block_table(std::cout, machine, op->stats(), ranks);

  // Cross-check: measured per-iteration kernel counts from the real solvers
  // (steady state, difference of a long and a short run).
  std::printf("\nmeasured kernel counts per CG-equivalent iteration "
              "(steady state, replacement disabled):\n");
  std::printf("%-14s %10s %10s %12s\n", "method", "spmv/it", "pc/it",
              "allr/it");
  const sparse::CsrMatrix a = sparse::make_poisson125_csr(n);
  precond::JacobiPreconditioner jacobi(a);
  for (const std::string& m : krylov::solver_names()) {
    if (m == "hybrid") continue;  // two-phase: no single steady state
    auto counters_at = [&](std::size_t iters) {
      krylov::SolverOptions opts;
      opts.rtol = 1e-30;
      opts.atol = 0.0;
      opts.s = s;
      opts.max_iterations = iters;
      opts.replacement_period = -1;
      bench::RunRecord rec = bench::run_method(m, a, &jacobi, opts);
      return rec.trace.counters();
    };
    const std::size_t span = static_cast<std::size_t>(10 * s);
    const auto c1 = counters_at(span);
    const auto c2 = counters_at(2 * span);
    const double d = static_cast<double>(span);
    std::printf("%-14s %10.2f %10.2f %12.2f\n", m.c_str(),
                (static_cast<double>(c2.spmvs) - c1.spmvs) / d,
                (static_cast<double>(c2.pc_applies) - c1.pc_applies) / d,
                (static_cast<double>(c2.allreduces) - c1.allreduces) / d);
  }
  std::printf("\n(paper Table I gives, per s=%d iterations: PCG 3s allr; "
              "PIPECG s; PIPECG3/OATI ceil(s/2); PsCG/PIPE-PsCG 1)\n", s);
  return 0;
}
