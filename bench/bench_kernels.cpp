// Kernel microbenchmarks (google-benchmark): the building blocks whose costs
// the machine model prices -- SPMV (CSR and matrix-free stencil), the s-step
// block kernels, dot batches, the s x s scalar work, and the runtime's
// allreduce -- plus a modeled-vs-measured cross-check hook (the printed
// real-time numbers are what one would calibrate MachineModel against on a
// new machine).
#include <benchmark/benchmark.h>

#include "pipescg/krylov/serial_engine.hpp"
#include "pipescg/krylov/sstep_common.hpp"
#include "pipescg/la/lu.hpp"
#include "pipescg/par/comm.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/precond/ssor.hpp"
#include "pipescg/sparse/dist_csr.hpp"
#include "pipescg/sparse/matrix_powers.hpp"
#include "pipescg/sparse/partition.hpp"
#include "pipescg/sparse/poisson125.hpp"
#include "pipescg/sparse/stencil.hpp"

using namespace pipescg;

namespace {

// Bytes one serial CSR apply moves, from operator shape (values + indices
// streamed once, x read, y written) -- mirrors DistCsr::bytes_per_apply so
// the GB/s google-benchmark prints is comparable with the
// pipescg_spmv_throughput_bytes_per_second gauges.
std::int64_t csr_apply_bytes(const sparse::CsrMatrix& a) {
  return static_cast<std::int64_t>(
      a.nnz() * (sizeof(double) + sizeof(sparse::CsrMatrix::Index)) +
      (a.rows() + 1) * sizeof(sparse::CsrMatrix::Index) +
      a.cols() * sizeof(double) + a.rows() * sizeof(double));
}

void BM_SpmvCsr5pt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), n, n, "p5");
  std::vector<double> x(a.rows(), 1.0), y(a.rows());
  for (auto _ : state) {
    a.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          csr_apply_bytes(a));
}
BENCHMARK(BM_SpmvCsr5pt)->Arg(64)->Arg(256);

void BM_SpmvStencil125(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto op = sparse::make_poisson125_operator(n);
  std::vector<double> x(op->rows(), 1.0), y(op->rows());
  for (auto _ : state) {
    op->apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(op->stats().nnz));
  // Matrix-free: only the vectors move (coefficients live in registers).
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(op->rows() * 2 *
                                                    sizeof(double)));
}
BENCHMARK(BM_SpmvStencil125)->Arg(24)->Arg(48);

void BM_SpmvCsr125(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sparse::CsrMatrix a = sparse::make_poisson125_csr(n);
  std::vector<double> x(a.rows(), 1.0), y(a.rows());
  for (auto _ : state) {
    a.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          csr_apply_bytes(a));
}
BENCHMARK(BM_SpmvCsr125)->Arg(24);

void BM_BlockCombine(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int s = static_cast<int>(state.range(1));
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), n, n, "p5");
  krylov::SerialEngine engine(a);
  krylov::VecBlock block = engine.new_block(static_cast<std::size_t>(s));
  krylov::Vec base = engine.new_vec(), out = engine.new_vec();
  std::vector<double> coeff(static_cast<std::size_t>(s), 0.5);
  for (auto _ : state) {
    engine.block_combine(out, base, block, coeff);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BlockCombine)->Args({256, 3})->Args({256, 5});

void BM_DotBatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pairs_n = static_cast<std::size_t>(state.range(1));
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), n, n, "p5");
  krylov::SerialEngine engine(a);
  krylov::VecBlock block = engine.new_block(pairs_n);
  std::vector<krylov::DotPair> pairs;
  for (std::size_t i = 0; i < pairs_n; ++i)
    pairs.push_back(krylov::DotPair{&block[i], &block[i]});
  std::vector<double> out(pairs_n);
  for (auto _ : state) {
    engine.dots(pairs, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DotBatch)->Args({256, 7})->Args({256, 18});

void BM_SsorApply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), n, n, "p5");
  const precond::SsorPreconditioner pc(a);
  std::vector<double> r(a.rows(), 1.0), u(a.rows());
  for (auto _ : state) {
    pc.apply(r, u);
    benchmark::DoNotOptimize(u.data());
  }
}
BENCHMARK(BM_SsorApply)->Arg(128);

void BM_ScalarWork(benchmark::State& state) {
  const int s = static_cast<int>(state.range(0));
  // Moments of a tiny SPD system (reused every iteration).
  std::vector<double> moments(static_cast<std::size_t>(2 * s + 1));
  for (int j = 0; j <= 2 * s; ++j)
    moments[static_cast<std::size_t>(j)] = 1.0 / (1.0 + j);  // Hilbert-ish
  la::DenseMatrix cross(static_cast<std::size_t>(s),
                        static_cast<std::size_t>(s));
  for (auto _ : state) {
    krylov::sstep::ScalarWork work(s);
    auto result = work.step(moments, cross);
    benchmark::DoNotOptimize(result.alpha.data());
  }
}
BENCHMARK(BM_ScalarWork)->Arg(3)->Arg(5)->Arg(8);

// s distributed SPMVs the plain way: one halo-exchange epoch each.  Pair
// with BM_MatrixPowers below for the measured side of the communication-
// avoidance trade the cost model prices (print_spmv_block_table).  On the
// in-process runtime an epoch costs two barriers (microseconds, not the
// network round-trips the model charges), so the redundant ghost-row flops
// usually make the block a net loss *here* -- the pair quantifies the two
// sides of the trade (epochs saved vs flops added); where the trade wins is
// the model's latency-dominated operating points.
void BM_DistSpmvRepeated(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int s = static_cast<int>(state.range(1));
  const sparse::CsrMatrix a = sparse::make_poisson125_csr(12);
  const sparse::Partition part(a.rows(), ranks);
  // Construction is communication-free and identical across iterations;
  // keep it out of the timed region so the measurement is the apply path.
  std::vector<sparse::DistCsr> dists;
  for (int r = 0; r < ranks; ++r) dists.emplace_back(a, part, r);
  for (auto _ : state) {
    par::Team::run(ranks, [&](par::Comm& comm) {
      const sparse::DistCsr& dist = dists[static_cast<std::size_t>(comm.rank())];
      std::vector<double> ghosts;
      std::vector<std::vector<double>> v(
          static_cast<std::size_t>(s) + 1,
          std::vector<double>(dist.local_rows(), 1.0));
      for (int round = 0; round < 8; ++round)
        for (int j = 0; j < s; ++j)
          dist.apply(comm, v[static_cast<std::size_t>(j)],
                     v[static_cast<std::size_t>(j) + 1], ghosts);
      benchmark::DoNotOptimize(v.back().data());
    });
  }
  std::int64_t bytes_per_round = 0;
  for (const sparse::DistCsr& d : dists)
    bytes_per_round += static_cast<std::int64_t>(d.bytes_per_apply());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8 *
                          s * bytes_per_round);
}
BENCHMARK(BM_DistSpmvRepeated)->Args({2, 3})->Args({4, 3})->Args({4, 6});

// The same s SPMVs through the matrix-powers kernel: one deep exchange per
// block plus redundant ghost-row compute.
void BM_MatrixPowers(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int s = static_cast<int>(state.range(1));
  const sparse::CsrMatrix a = sparse::make_poisson125_csr(12);
  const sparse::Partition part(a.rows(), ranks);
  std::vector<sparse::MatrixPowers> mpks;
  for (int r = 0; r < ranks; ++r) mpks.emplace_back(a, part, r, s);
  for (auto _ : state) {
    par::Team::run(ranks, [&](par::Comm& comm) {
      const sparse::MatrixPowers& mpk =
          mpks[static_cast<std::size_t>(comm.rank())];
      sparse::MatrixPowers::Scratch scratch;
      std::vector<double> x(mpk.local_rows(), 1.0);
      std::vector<std::vector<double>> v(
          static_cast<std::size_t>(s),
          std::vector<double>(mpk.local_rows()));
      std::vector<std::span<double>> outs;
      for (auto& o : v) outs.emplace_back(o);
      for (int round = 0; round < 8; ++round)
        mpk.apply(comm, x, outs, scratch);
      benchmark::DoNotOptimize(v.back().data());
    });
  }
  std::int64_t bytes_per_block = 0;
  for (const sparse::MatrixPowers& m : mpks)
    bytes_per_block += static_cast<std::int64_t>(
        m.bytes_per_block(static_cast<std::size_t>(s)));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8 *
                          bytes_per_block);
}
BENCHMARK(BM_MatrixPowers)->Args({2, 3})->Args({4, 3})->Args({4, 6});

void BM_RuntimeAllreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const std::size_t payload = 18;  // a PIPE-PsCG s=3 batch
  for (auto _ : state) {
    par::Team::run(ranks, [&](par::Comm& comm) {
      std::vector<double> v(payload, 1.0), out(payload);
      for (int round = 0; round < 16; ++round)
        comm.allreduce_sum(v, out);
      benchmark::DoNotOptimize(out.data());
    });
  }
}
BENCHMARK(BM_RuntimeAllreduce)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
