// Kernel microbenchmarks (google-benchmark): the building blocks whose costs
// the machine model prices -- SPMV (CSR and matrix-free stencil), the s-step
// block kernels, dot batches, the s x s scalar work, and the runtime's
// allreduce -- plus a modeled-vs-measured cross-check hook (the printed
// real-time numbers are what one would calibrate MachineModel against on a
// new machine).
#include <benchmark/benchmark.h>

#include "pipescg/krylov/serial_engine.hpp"
#include "pipescg/krylov/sstep_common.hpp"
#include "pipescg/la/lu.hpp"
#include "pipescg/par/comm.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/precond/ssor.hpp"
#include "pipescg/sparse/poisson125.hpp"
#include "pipescg/sparse/stencil.hpp"

using namespace pipescg;

namespace {

void BM_SpmvCsr5pt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), n, n, "p5");
  std::vector<double> x(a.rows(), 1.0), y(a.rows());
  for (auto _ : state) {
    a.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_SpmvCsr5pt)->Arg(64)->Arg(256);

void BM_SpmvStencil125(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto op = sparse::make_poisson125_operator(n);
  std::vector<double> x(op->rows(), 1.0), y(op->rows());
  for (auto _ : state) {
    op->apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(op->stats().nnz));
}
BENCHMARK(BM_SpmvStencil125)->Arg(24)->Arg(48);

void BM_SpmvCsr125(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sparse::CsrMatrix a = sparse::make_poisson125_csr(n);
  std::vector<double> x(a.rows(), 1.0), y(a.rows());
  for (auto _ : state) {
    a.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_SpmvCsr125)->Arg(24);

void BM_BlockCombine(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int s = static_cast<int>(state.range(1));
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), n, n, "p5");
  krylov::SerialEngine engine(a);
  krylov::VecBlock block = engine.new_block(static_cast<std::size_t>(s));
  krylov::Vec base = engine.new_vec(), out = engine.new_vec();
  std::vector<double> coeff(static_cast<std::size_t>(s), 0.5);
  for (auto _ : state) {
    engine.block_combine(out, base, block, coeff);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BlockCombine)->Args({256, 3})->Args({256, 5});

void BM_DotBatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pairs_n = static_cast<std::size_t>(state.range(1));
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), n, n, "p5");
  krylov::SerialEngine engine(a);
  krylov::VecBlock block = engine.new_block(pairs_n);
  std::vector<krylov::DotPair> pairs;
  for (std::size_t i = 0; i < pairs_n; ++i)
    pairs.push_back(krylov::DotPair{&block[i], &block[i]});
  std::vector<double> out(pairs_n);
  for (auto _ : state) {
    engine.dots(pairs, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DotBatch)->Args({256, 7})->Args({256, 18});

void BM_SsorApply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), n, n, "p5");
  const precond::SsorPreconditioner pc(a);
  std::vector<double> r(a.rows(), 1.0), u(a.rows());
  for (auto _ : state) {
    pc.apply(r, u);
    benchmark::DoNotOptimize(u.data());
  }
}
BENCHMARK(BM_SsorApply)->Arg(128);

void BM_ScalarWork(benchmark::State& state) {
  const int s = static_cast<int>(state.range(0));
  // Moments of a tiny SPD system (reused every iteration).
  std::vector<double> moments(static_cast<std::size_t>(2 * s + 1));
  for (int j = 0; j <= 2 * s; ++j)
    moments[static_cast<std::size_t>(j)] = 1.0 / (1.0 + j);  // Hilbert-ish
  la::DenseMatrix cross(static_cast<std::size_t>(s),
                        static_cast<std::size_t>(s));
  for (auto _ : state) {
    krylov::sstep::ScalarWork work(s);
    auto result = work.step(moments, cross);
    benchmark::DoNotOptimize(result.alpha.data());
  }
}
BENCHMARK(BM_ScalarWork)->Arg(3)->Arg(5)->Arg(8);

void BM_RuntimeAllreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const std::size_t payload = 18;  // a PIPE-PsCG s=3 batch
  for (auto _ : state) {
    par::Team::run(ranks, [&](par::Comm& comm) {
      std::vector<double> v(payload, 1.0), out(payload);
      for (int round = 0; round < 16; ++round)
        comm.allreduce_sum(v, out);
      benchmark::DoNotOptimize(out.data());
    });
  }
}
BENCHMARK(BM_RuntimeAllreduce)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
