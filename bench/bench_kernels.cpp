// Kernel microbenchmarks (google-benchmark): the building blocks whose costs
// the machine model prices -- SPMV (scalar CSR, SELL-C-sigma, matrix-free
// stencil), the s-step block kernels, dot batches (fused single-pass vs one
// sweep per pair), the basis-step epilogue (fused vs copy/axpy/axpy/scale),
// the s x s scalar work, and the runtime's allreduce -- plus a
// modeled-vs-measured cross-check hook (the printed real-time numbers are
// what one would calibrate MachineModel against on a new machine).
//
// Two entry modes:
//   * default             -- google-benchmark over everything registered;
//   * --bench-json PATH   -- a fixed steady_clock harness over the hot-kernel
//                            pairs (CSR vs SELL per matrix family, fused vs
//                            unfused dot batch and basis step), written as
//                            BENCH_kernels.json with every measured number
//                            under ratios.kernels.* so tools/diff_reports.py
//                            and tools/perf_trajectory.py gate and track them
//                            like any other bench (see .github/workflows).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "pipescg/krylov/registry.hpp"
#include "pipescg/krylov/serial_engine.hpp"
#include "pipescg/krylov/sstep_common.hpp"
#include "pipescg/la/lu.hpp"
#include "pipescg/la/vector_kernels.hpp"
#include "pipescg/obs/json.hpp"
#include "pipescg/obs/tracing.hpp"
#include "pipescg/par/comm.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/precond/ssor.hpp"
#include "pipescg/sparse/bytes_model.hpp"
#include "pipescg/sparse/dist_csr.hpp"
#include "pipescg/sparse/matrix_powers.hpp"
#include "pipescg/sparse/partition.hpp"
#include "pipescg/sparse/poisson125.hpp"
#include "pipescg/sparse/sell_matrix.hpp"
#include "pipescg/sparse/stencil.hpp"
#include "pipescg/sparse/surrogates.hpp"

using namespace pipescg;

namespace {

// Bytes one serial CSR apply moves, from operator shape -- the SAME model
// DistCsr::bytes_per_apply uses (sparse::csr_apply_bytes), so the GB/s
// google-benchmark prints is comparable with the
// pipescg_spmv_throughput_bytes_per_second gauges.
std::int64_t csr_apply_bytes(const sparse::CsrMatrix& a) {
  return static_cast<std::int64_t>(
      sparse::csr_apply_bytes(a.rows(), a.cols(), a.nnz()));
}

void BM_SpmvCsr5pt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), n, n, "p5");
  std::vector<double> x(a.rows(), 1.0), y(a.rows());
  for (auto _ : state) {
    a.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          csr_apply_bytes(a));
}
BENCHMARK(BM_SpmvCsr5pt)->Arg(64)->Arg(256);

// The same matrix through its SELL-C-sigma conversion: int32 columns,
// chunk-major storage, active-lane kernel.  Pair with BM_SpmvCsr5pt -- the
// time ratio is the measured side of MachineModel::local_spmv_seconds.
void BM_SpmvSell5pt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), n, n, "p5");
  const sparse::SellMatrix sell(a);
  std::vector<double> x(a.rows(), 1.0), y(a.rows());
  for (auto _ : state) {
    sell.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sell.nnz()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sell.bytes_per_apply()));
}
BENCHMARK(BM_SpmvSell5pt)->Arg(64)->Arg(256);

void BM_SpmvStencil125(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto op = sparse::make_poisson125_operator(n);
  std::vector<double> x(op->rows(), 1.0), y(op->rows());
  for (auto _ : state) {
    op->apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(op->stats().nnz));
  // Matrix-free: only the vectors move (coefficients live in registers).
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(op->rows() * 2 *
                                                    sizeof(double)));
}
BENCHMARK(BM_SpmvStencil125)->Arg(24)->Arg(48);

void BM_SpmvCsr125(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sparse::CsrMatrix a = sparse::make_poisson125_csr(n);
  std::vector<double> x(a.rows(), 1.0), y(a.rows());
  for (auto _ : state) {
    a.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          csr_apply_bytes(a));
}
BENCHMARK(BM_SpmvCsr125)->Arg(24);

void BM_SpmvSell125(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sparse::CsrMatrix a = sparse::make_poisson125_csr(n);
  const sparse::SellMatrix sell(a);
  std::vector<double> x(a.rows(), 1.0), y(a.rows());
  for (auto _ : state) {
    sell.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sell.nnz()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sell.bytes_per_apply()));
}
BENCHMARK(BM_SpmvSell125)->Arg(24);

void BM_BlockCombine(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int s = static_cast<int>(state.range(1));
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), n, n, "p5");
  krylov::SerialEngine engine(a);
  krylov::VecBlock block = engine.new_block(static_cast<std::size_t>(s));
  krylov::Vec base = engine.new_vec(), out = engine.new_vec();
  std::vector<double> coeff(static_cast<std::size_t>(s), 0.5);
  for (auto _ : state) {
    engine.block_combine(out, base, block, coeff);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BlockCombine)->Args({256, 3})->Args({256, 5});

void BM_DotBatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pairs_n = static_cast<std::size_t>(state.range(1));
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), n, n, "p5");
  krylov::SerialEngine engine(a);
  krylov::VecBlock block = engine.new_block(pairs_n);
  std::vector<krylov::DotPair> pairs;
  for (std::size_t i = 0; i < pairs_n; ++i)
    pairs.push_back(krylov::DotPair{&block[i], &block[i]});
  std::vector<double> out(pairs_n);
  for (auto _ : state) {
    engine.dots(pairs, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DotBatch)->Args({256, 7})->Args({256, 18});

// The raw fused-vs-unfused dot-batch pair at out-of-cache sizes: pairs walk
// a ring of distinct vectors so the unfused path re-streams every operand
// from DRAM while the fused path touches each 2048-double block of all
// operands before moving on.  arg0 = log2(vector length), arg1 = pairs.
void dot_batch_bench(benchmark::State& state, bool fused) {
  const std::size_t n = std::size_t{1} << static_cast<std::size_t>(
                            state.range(0));
  const auto pairs_n = static_cast<std::size_t>(state.range(1));
  std::vector<la::AlignedDoubles> store(pairs_n + 1);
  for (std::size_t v = 0; v < store.size(); ++v) {
    store[v].resize(n);
    for (std::size_t i = 0; i < n; ++i)
      store[v][i] = 1.0 / static_cast<double>(v + i + 1);
  }
  std::vector<la::DotView> views;
  for (std::size_t p = 0; p < pairs_n; ++p)
    views.push_back(la::DotView{store[p].data(), store[p + 1].data()});
  std::vector<double> out(pairs_n);
  const la::FusedKernelsGuard guard(fused);
  for (auto _ : state) {
    la::dot_batch(views, n, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(pairs_n * 2 * n * sizeof(double)));
}
void BM_DotBatchFused(benchmark::State& state) { dot_batch_bench(state, true); }
void BM_DotBatchUnfused(benchmark::State& state) {
  dot_batch_bench(state, false);
}
BENCHMARK(BM_DotBatchFused)->Args({19, 18});
BENCHMARK(BM_DotBatchUnfused)->Args({19, 18});

// The basis-step epilogue dst = (av - theta p1 - sigma p2) / gamma: fused is
// one pass over four streams, unfused replays the copy/axpy/axpy/scale chain
// (four read-modify-write passes over dst).  arg0 = log2(vector length).
void basis_step_bench(benchmark::State& state, bool fused) {
  const std::size_t n = std::size_t{1} << static_cast<std::size_t>(
                            state.range(0));
  la::AlignedDoubles dst(n), av(n), p1(n), p2(n);
  for (std::size_t i = 0; i < n; ++i) {
    av[i] = 1.0 / static_cast<double>(i + 1);
    p1[i] = 1.0 / static_cast<double>(i + 2);
    p2[i] = 1.0 / static_cast<double>(i + 3);
  }
  const la::FusedKernelsGuard guard(fused);
  for (auto _ : state) {
    la::shift_combine(dst.data(), av.data(), 0.37, p1.data(), 0.21, p2.data(),
                      1.73, n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(4 * n * sizeof(double)));
}
void BM_BasisStepFused(benchmark::State& state) {
  basis_step_bench(state, true);
}
void BM_BasisStepUnfused(benchmark::State& state) {
  basis_step_bench(state, false);
}
BENCHMARK(BM_BasisStepFused)->Arg(19);
BENCHMARK(BM_BasisStepUnfused)->Arg(19);

void BM_SsorApply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), n, n, "p5");
  const precond::SsorPreconditioner pc(a);
  std::vector<double> r(a.rows(), 1.0), u(a.rows());
  for (auto _ : state) {
    pc.apply(r, u);
    benchmark::DoNotOptimize(u.data());
  }
}
BENCHMARK(BM_SsorApply)->Arg(128);

void BM_ScalarWork(benchmark::State& state) {
  const int s = static_cast<int>(state.range(0));
  // Moments of a tiny SPD system (reused every iteration).
  std::vector<double> moments(static_cast<std::size_t>(2 * s + 1));
  for (int j = 0; j <= 2 * s; ++j)
    moments[static_cast<std::size_t>(j)] = 1.0 / (1.0 + j);  // Hilbert-ish
  la::DenseMatrix cross(static_cast<std::size_t>(s),
                        static_cast<std::size_t>(s));
  for (auto _ : state) {
    krylov::sstep::ScalarWork work(s);
    auto result = work.step(moments, cross);
    benchmark::DoNotOptimize(result.alpha.data());
  }
}
BENCHMARK(BM_ScalarWork)->Arg(3)->Arg(5)->Arg(8);

// s distributed SPMVs the plain way: one halo-exchange epoch each.  Pair
// with BM_MatrixPowers below for the measured side of the communication-
// avoidance trade the cost model prices (print_spmv_block_table).  On the
// in-process runtime an epoch costs two barriers (microseconds, not the
// network round-trips the model charges), so the redundant ghost-row flops
// usually make the block a net loss *here* -- the pair quantifies the two
// sides of the trade (epochs saved vs flops added); where the trade wins is
// the model's latency-dominated operating points.
void BM_DistSpmvRepeated(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int s = static_cast<int>(state.range(1));
  const sparse::CsrMatrix a = sparse::make_poisson125_csr(12);
  const sparse::Partition part(a.rows(), ranks);
  // Construction is communication-free and identical across iterations;
  // keep it out of the timed region so the measurement is the apply path.
  std::vector<sparse::DistCsr> dists;
  for (int r = 0; r < ranks; ++r) dists.emplace_back(a, part, r);
  for (auto _ : state) {
    par::Team::run(ranks, [&](par::Comm& comm) {
      const sparse::DistCsr& dist = dists[static_cast<std::size_t>(comm.rank())];
      std::vector<double> ghosts;
      std::vector<std::vector<double>> v(
          static_cast<std::size_t>(s) + 1,
          std::vector<double>(dist.local_rows(), 1.0));
      for (int round = 0; round < 8; ++round)
        for (int j = 0; j < s; ++j)
          dist.apply(comm, v[static_cast<std::size_t>(j)],
                     v[static_cast<std::size_t>(j) + 1], ghosts);
      benchmark::DoNotOptimize(v.back().data());
    });
  }
  std::int64_t bytes_per_round = 0;
  for (const sparse::DistCsr& d : dists)
    bytes_per_round += static_cast<std::int64_t>(d.bytes_per_apply());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8 *
                          s * bytes_per_round);
}
BENCHMARK(BM_DistSpmvRepeated)->Args({2, 3})->Args({4, 3})->Args({4, 6});

// The same s SPMVs through the matrix-powers kernel: one deep exchange per
// block plus redundant ghost-row compute.
void BM_MatrixPowers(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int s = static_cast<int>(state.range(1));
  const sparse::CsrMatrix a = sparse::make_poisson125_csr(12);
  const sparse::Partition part(a.rows(), ranks);
  std::vector<sparse::MatrixPowers> mpks;
  for (int r = 0; r < ranks; ++r) mpks.emplace_back(a, part, r, s);
  for (auto _ : state) {
    par::Team::run(ranks, [&](par::Comm& comm) {
      const sparse::MatrixPowers& mpk =
          mpks[static_cast<std::size_t>(comm.rank())];
      sparse::MatrixPowers::Scratch scratch;
      std::vector<double> x(mpk.local_rows(), 1.0);
      std::vector<std::vector<double>> v(
          static_cast<std::size_t>(s),
          std::vector<double>(mpk.local_rows()));
      std::vector<std::span<double>> outs;
      for (auto& o : v) outs.emplace_back(o);
      for (int round = 0; round < 8; ++round)
        mpk.apply(comm, x, outs, scratch);
      benchmark::DoNotOptimize(v.back().data());
    });
  }
  std::int64_t bytes_per_block = 0;
  for (const sparse::MatrixPowers& m : mpks)
    bytes_per_block += static_cast<std::int64_t>(
        m.bytes_per_block(static_cast<std::size_t>(s)));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8 *
                          bytes_per_block);
}
BENCHMARK(BM_MatrixPowers)->Args({2, 3})->Args({4, 3})->Args({4, 6});

void BM_RuntimeAllreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const std::size_t payload = 18;  // a PIPE-PsCG s=3 batch
  for (auto _ : state) {
    par::Team::run(ranks, [&](par::Comm& comm) {
      std::vector<double> v(payload, 1.0), out(payload);
      for (int round = 0; round < 16; ++round)
        comm.allreduce_sum(v, out);
      benchmark::DoNotOptimize(out.data());
    });
  }
}
BENCHMARK(BM_RuntimeAllreduce)->Arg(2)->Arg(4);

// ---------------------------------------------------------------------------
// --bench-json mode: a fixed steady_clock harness over the hot-kernel pairs.
//
// google-benchmark's reporters print; this mode *gates*.  Every number lands
// under ratios.kernels.* in the same BENCH_<name>.json schema the figure
// benches emit, so the kernel-smoke CI job diffs it against
// tools/bench_baseline/BENCH_kernels.json (GB/s keys with machine slack,
// time-ratio speedups tighter, pass counts and padding ratios exact) and
// appends it to bench/trajectory/kernels.jsonl.

// Seconds per call: adaptive batch sized to ~10 ms, best of `reps` batches
// (best-of filters scheduler noise; these feed ratio keys, not absolutes).
template <typename F>
double seconds_per_call(F&& fn, int reps = 5) {
  using clock = std::chrono::steady_clock;
  auto once = [&](int iters) {
    const auto t0 = clock::now();
    for (int i = 0; i < iters; ++i) fn();
    return std::chrono::duration<double>(clock::now() - t0).count() / iters;
  };
  fn();  // warm the caches and the page tables
  double t = once(1);
  const int iters =
      t > 0.0 ? std::max(1, static_cast<int>(0.01 / t)) : 1000;
  double best = once(iters);
  for (int r = 1; r < reps; ++r) best = std::min(best, once(iters));
  return best;
}

double to_gbs(double bytes, double seconds) {
  return seconds > 0.0 ? bytes / seconds / 1e9 : 0.0;
}

// One CSR-vs-SELL pair: measure both applies on the same matrix, emit GB/s
// for each (their own bytes models: 16 B/nnz CSR vs ~12 B/nnz SELL), the
// TIME ratio csr/sell as the speedup, and the deterministic padding ratio.
void spmv_pair(obs::json::Value& kernels, const std::string& label,
               const sparse::CsrMatrix& a) {
  const sparse::SellMatrix sell(a);
  std::vector<double> x(a.rows(), 1.0), y(a.rows());
  const double t_csr = seconds_per_call([&] { a.apply(x, y); });
  const double t_sell = seconds_per_call([&] { sell.apply(x, y); });
  const auto csr_bytes = static_cast<double>(csr_apply_bytes(a));
  const auto sell_bytes = static_cast<double>(sell.bytes_per_apply());
  kernels.set("spmv_csr_gbs_" + label, to_gbs(csr_bytes, t_csr));
  kernels.set("spmv_sell_gbs_" + label, to_gbs(sell_bytes, t_sell));
  kernels.set("sell_vs_csr_speedup_" + label,
              t_sell > 0.0 ? t_csr / t_sell : 0.0);
  kernels.set("sell_padding_" + label, sell.padding_ratio());
  std::printf("  %-12s csr %7.2f GB/s  sell %7.2f GB/s  speedup %5.2fx  "
              "padding %.3f\n",
              label.c_str(), to_gbs(csr_bytes, t_csr),
              to_gbs(sell_bytes, t_sell), t_sell > 0.0 ? t_csr / t_sell : 0.0,
              sell.padding_ratio());
}

int run_bench_json(const std::string& path) {
  obs::json::Value kernels = obs::json::Value::object();
  std::printf("kernel harness (--bench-json): CSR vs SELL\n");

  // The three matrix families the identity tests pin: the paper's 125-pt
  // Poisson and the two SuiteSparse-like surrogates.
  spmv_pair(kernels, "poisson125", sparse::make_poisson125_csr(16));
  spmv_pair(kernels, "ecology2", sparse::make_ecology2_like(192, 192));
  spmv_pair(kernels, "thermal2", sparse::make_thermal2_like(192, 192));

  // Fused vs unfused dot batch: 18 pairs (a PIPE-PsCG s=3 outer batch) over
  // 2^21-double vectors (a 300 MB ring, past any LLC) -- the unfused path
  // pays one DRAM stream per pair while the fused path re-uses each
  // cache-resident block across all pairs.
  {
    const std::size_t n = std::size_t{1} << 21;
    const std::size_t pairs_n = 18;
    std::vector<la::AlignedDoubles> store(pairs_n + 1);
    for (std::size_t v = 0; v < store.size(); ++v) {
      store[v].resize(n);
      for (std::size_t i = 0; i < n; ++i)
        store[v][i] = 1.0 / static_cast<double>(v + i + 1);
    }
    std::vector<la::DotView> views;
    for (std::size_t p = 0; p < pairs_n; ++p)
      views.push_back(la::DotView{store[p].data(), store[p + 1].data()});
    std::vector<double> out(pairs_n);
    const double bytes =
        static_cast<double>(pairs_n * 2 * n * sizeof(double));
    double t_fused, t_unfused;
    {
      const la::FusedKernelsGuard guard(true);
      t_fused = seconds_per_call([&] { la::dot_batch(views, n, out); });
    }
    {
      const la::FusedKernelsGuard guard(false);
      t_unfused = seconds_per_call([&] { la::dot_batch(views, n, out); });
    }
    kernels.set("dot_fused_gbs", to_gbs(bytes, t_fused));
    kernels.set("dot_unfused_gbs", to_gbs(bytes, t_unfused));
    kernels.set("dot_fused_speedup",
                t_fused > 0.0 ? t_unfused / t_fused : 0.0);

    // The deterministic side of the same claim: memory passes per batch.
    la::KernelStats& stats = la::kernel_stats();
    {
      const la::FusedKernelsGuard guard(false);
      stats.reset();
      la::dot_batch(views, n, out);
      kernels.set("dot_passes_unfused", stats.dot_sweeps);
    }
    {
      const la::FusedKernelsGuard guard(true);
      stats.reset();
      la::dot_batch(views, n, out);
      kernels.set("dot_passes_fused", stats.dot_sweeps);
    }
    std::printf("  dot batch    fused %7.2f GB/s  unfused %7.2f GB/s  "
                "speedup %5.2fx  passes %zu -> %zu\n",
                to_gbs(bytes, t_fused), to_gbs(bytes, t_unfused),
                t_fused > 0.0 ? t_unfused / t_fused : 0.0, pairs_n,
                std::size_t{1});
  }

  // Fused vs unfused basis step (the shifted-basis epilogue): one pass over
  // four streams vs the copy/axpy/axpy/scale chain.
  {
    const std::size_t n = std::size_t{1} << 19;
    la::AlignedDoubles dst(n), av(n), p1(n), p2(n);
    for (std::size_t i = 0; i < n; ++i) {
      av[i] = 1.0 / static_cast<double>(i + 1);
      p1[i] = 1.0 / static_cast<double>(i + 2);
      p2[i] = 1.0 / static_cast<double>(i + 3);
    }
    auto step = [&] {
      la::shift_combine(dst.data(), av.data(), 0.37, p1.data(), 0.21,
                        p2.data(), 1.73, n);
    };
    const double bytes = static_cast<double>(4 * n * sizeof(double));
    double t_fused, t_unfused;
    {
      const la::FusedKernelsGuard guard(true);
      t_fused = seconds_per_call(step);
    }
    {
      const la::FusedKernelsGuard guard(false);
      t_unfused = seconds_per_call(step);
    }
    kernels.set("basis_fused_gbs", to_gbs(bytes, t_fused));
    kernels.set("basis_unfused_gbs", to_gbs(bytes, t_unfused));
    kernels.set("basis_fused_speedup",
                t_fused > 0.0 ? t_unfused / t_fused : 0.0);

    la::KernelStats& stats = la::kernel_stats();
    {
      const la::FusedKernelsGuard guard(false);
      stats.reset();
      step();
      kernels.set("basis_passes_unfused", stats.basis_passes);
    }
    {
      const la::FusedKernelsGuard guard(true);
      stats.reset();
      step();
      kernels.set("basis_passes_fused", stats.basis_passes);
    }
    std::printf("  basis step   fused %7.2f GB/s  unfused %7.2f GB/s  "
                "speedup %5.2fx\n",
                to_gbs(bytes, t_fused), to_gbs(bytes, t_unfused),
                t_fused > 0.0 ? t_unfused / t_fused : 0.0);
  }

  // Tracing overhead: the SAME serial solve with a Tracer (span ring +
  // per-checkpoint outer_iteration spans) installed vs bare.  The contract
  // is "tracing never perturbs the solve": the ratio gates at <= 3% in CI.
  obs::json::Value obs_ratios = obs::json::Value::object();
  {
    const sparse::CsrMatrix a = sparse::make_poisson125_csr(10);
    krylov::SerialEngine engine(a);
    krylov::Vec b = engine.new_vec();
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0;
    krylov::SolverOptions opts;
    opts.rtol = 1e-8;
    opts.s = 3;
    const auto solver = krylov::make_solver("scg-sspmv");
    auto solve_once = [&] {
      krylov::Vec x = engine.new_vec();
      solver->solve(engine, b, x, opts);
    };
    const double t_plain = seconds_per_call(solve_once, 7);
    obs::tracing::SpanRing ring(obs::tracing::SpanRing::kDefaultCapacity, 0);
    obs::tracing::Tracer tracer(obs::tracing::TraceContext{1, 0}, ring);
    double t_traced = 0.0;
    {
      const obs::tracing::Tracer::Install install(&tracer);
      t_traced = seconds_per_call(solve_once, 7);
    }
    const double overhead = t_plain > 0.0 ? t_traced / t_plain : 0.0;
    obs_ratios.set("tracing_overhead", overhead);
    std::printf("  tracing      plain %7.3f ms  traced %7.3f ms  "
                "overhead %5.3fx (%zu spans retained)\n",
                1e3 * t_plain, 1e3 * t_traced, overhead, ring.size());
  }

  obs::json::Value doc = obs::json::Value::object();
  doc.set("bench", "kernels");
  doc.set("methods", obs::json::Value::object());
  obs::json::Value ratios = obs::json::Value::object();
  ratios.set("kernels", std::move(kernels));
  ratios.set("obs", std::move(obs_ratios));
  doc.set("ratios", std::move(ratios));
  obs::json::write_file(path, doc);
  std::printf("wrote kernel bench json to %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --bench-json PATH (or --bench-json=PATH) runs the fixed gating harness
  // instead of google-benchmark.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc)
      return run_bench_json(argv[i + 1]);
    if (std::strncmp(argv[i], "--bench-json=", 13) == 0)
      return run_bench_json(argv[i] + 13);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
