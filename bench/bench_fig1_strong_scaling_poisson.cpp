// Figure 1 reproduction: strong scaling of the PCG variants on the 125-pt
// 3D Poisson problem, speedup relative to PCG on one node.
//
// Paper setting: 100^3 unknowns, Jacobi preconditioner, rtol 1e-5, s = 3,
// up to 120 nodes (24 cores each) of a Cray-XC40.  Default here is a 40^3
// grid (this box has one core); pass --n 100 for the paper size.  The
// convergence runs are real; the per-node-count timings replay the recorded
// event traces through the machine model (see DESIGN.md).
#include <cstdio>
#include <fstream>
#include <iostream>

#include "pipescg/base/cli.hpp"
#include "pipescg/bench_support/figures.hpp"
#include "pipescg/obs/metrics.hpp"
#include "pipescg/obs/telemetry.hpp"
#include "pipescg/par/comm.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/sim/auto_tune.hpp"
#include "pipescg/sim/cost_table.hpp"
#include "pipescg/sparse/poisson125.hpp"
#include "pipescg/sparse/sell_matrix.hpp"

using namespace pipescg;

int main(int argc, char** argv) {
  CliParser cli("bench_fig1_strong_scaling_poisson",
                "Fig. 1: strong scaling on the 125-pt Poisson problem");
  cli.add_option("n", "64", "grid points per dimension (paper: 100)");
  cli.add_option("rtol", "1e-5", "relative tolerance");
  cli.add_option("s", "3", "s-step depth for the s-step methods");
  cli.add_option("max-nodes", "120", "largest node count in the sweep");
  cli.add_option("csv", "", "optional CSV output path for the figure data");
  cli.add_option("trace-nodes", "40",
                 "node count the modeled --trace-out schedule is priced at");
  cli.add_option("bench-json", "",
                 "write machine-readable BENCH_<name>.json (per-method "
                 "iterations, modeled overlap efficiency, speedups)");
  cli.add_format_option();
  cli.add_observability_options();
  if (!cli.parse(argc, argv)) return 0;
  const sparse::SparseFormat format =
      sparse::parse_sparse_format(cli.str("format"));

  const std::size_t n = static_cast<std::size_t>(cli.integer("n"));
  // Default: the matrix-free stencil operator (the historical fig1 path,
  // byte-identical baselines).  --format sell assembles the same 125-pt
  // matrix as CSR and solves through its SELL-C-sigma conversion instead.
  const auto op = sparse::make_poisson125_operator(n);
  const auto jacobi = bench::make_stencil_jacobi(*op);
  sparse::CsrMatrix csr;
  sparse::SellMatrix sell;
  std::unique_ptr<precond::JacobiPreconditioner> csr_jacobi;
  const sparse::LinearOperator* aop = op.get();
  const precond::Preconditioner* pcp = jacobi.get();
  if (format == sparse::SparseFormat::kSell) {
    csr = sparse::make_poisson125_csr(n);
    sell = sparse::SellMatrix(csr);
    csr_jacobi = std::make_unique<precond::JacobiPreconditioner>(csr);
    aop = &sell;
    pcp = csr_jacobi.get();
    std::printf("format sell: C=%zu sigma=%zu padding %.3f\n", sell.chunk(),
                sell.sigma(), sell.padding_ratio());
  }

  krylov::SolverOptions opts;
  opts.rtol = cli.real("rtol");
  opts.s = static_cast<int>(cli.integer("s"));
  opts.max_iterations = 100000;
  opts.norm = krylov::NormType::kPreconditioned;

  const std::vector<std::string> methods = {
      "pcg",  "pipecg",   "pipecg3",  "pipecg-oati",
      "pscg", "pipe-scg", "pipe-pscg"};

  std::printf("Fig. 1: 125-pt Poisson, %zu^3 unknowns (%zu), jacobi, rtol "
              "%.1e, s=%d\n",
              n, op->rows(), opts.rtol, opts.s);

  // --metrics-out: per-method solve stats in the unified registry, with live
  // gauges while each method runs (--metrics-period-ms refreshes the file).
  const std::string metrics_out = cli.str("metrics-out");
  const double metrics_period_ms = cli.real("metrics-period-ms");
  auto registry = !metrics_out.empty()
                      ? std::make_unique<obs::metrics::Registry>()
                      : nullptr;
  auto sampler = registry && metrics_period_ms > 0.0
                     ? std::make_unique<obs::metrics::MetricsSampler>(
                           *registry, metrics_out, metrics_period_ms)
                     : nullptr;
  if (sampler) sampler->start();

  std::vector<bench::RunRecord> runs;
  std::string telemetry;
  for (const std::string& m : methods) {
    obs::ConvergenceTelemetry telem(m);
    const obs::metrics::Labels labels = {{"method", m}, {"bench", "fig1"}};
    auto live = registry ? std::make_unique<obs::metrics::LiveSolve>(*registry,
                                                                     labels)
                         : nullptr;
    {
      obs::ConvergenceTelemetry::Install install(
          cli.str("telemetry-out").empty() ? nullptr : &telem);
      const obs::metrics::LiveSolve::Install live_install(live.get());
      runs.push_back(bench::run_method(m, *aop, pcp, opts));
    }
    if (registry)
      obs::metrics::register_stats(*registry, runs.back().stats, labels);
    telemetry += telem.to_jsonl();
    std::printf("  ran %-12s: %zu iterations\n", m.c_str(),
                runs.back().stats.iterations);
  }
  bench::print_run_summaries(runs);

  const sim::Timeline timeline(sim::MachineModel::cray_xc40_like());
  // Modeled local-sweep format trade at the trace node count (advisory; the
  // measured CSR-vs-SELL ratio lives in bench_kernels / ratios.kernels.*).
  sim::print_format_table(
      std::cout, timeline.machine(), aop->stats(),
      timeline.machine().ranks_for_nodes(
          static_cast<int>(cli.integer("trace-nodes"))));
  const std::vector<int> nodes =
      bench::node_sweep(static_cast<int>(cli.integer("max-nodes")));
  const bench::ScalingReport report =
      bench::make_scaling_report(runs, timeline, nodes, "pcg");
  bench::print_scaling_report(
      report, "Fig. 1: speedup vs PCG@1node, 125-pt Poisson");
  bench::write_scaling_csv(report, cli.str("csv"));
  if (cli.flag("profile")) bench::print_run_counters(runs);
  const int trace_nodes = static_cast<int>(cli.integer("trace-nodes"));
  const int ranks = timeline.machine().ranks_for_nodes(trace_nodes);
  if (cli.flag("analyze")) bench::print_modeled_overlap(runs, timeline, ranks);
  bench::write_modeled_trace(runs, timeline, trace_nodes,
                             cli.str("trace-out"));
  bench::write_bench_report(runs, report,
                            "Fig. 1: strong scaling, 125-pt Poisson",
                            cli.str("report-out"));
  bench::write_bench_json("fig1", runs, report, timeline, ranks, aop->stats(),
                          cli.str("bench-json"));
  if (!cli.str("telemetry-out").empty()) {
    std::ofstream os(cli.str("telemetry-out"), std::ios::binary);
    os << telemetry;
    std::printf("wrote telemetry to %s\n", cli.str("telemetry-out").c_str());
  }
  if (registry) {
    obs::metrics::register_fault(*registry, /*injected_faults=*/0,
                                 /*recoveries=*/0, par::comm_watchdog_trips(),
                                 {{"bench", "fig1"}});
    if (sampler) {
      sampler->stop();
      std::printf("wrote %zu metrics snapshots to %s\n", sampler->samples(),
                  metrics_out.c_str());
    } else {
      registry->write_textfile(metrics_out);
      std::printf("wrote metrics exposition to %s\n", metrics_out.c_str());
    }
  }

  // Paper landmarks for comparison (100^3, SahasraT): PCG peaks ~11.3x at 40
  // nodes; PIPECG 14.79x; PIPECG3 17.77x; OATI 19.76x; PsCG 12.79x;
  // PIPE-PsCG overtakes OATI from ~60 nodes and peaks highest.
  return 0;
}
