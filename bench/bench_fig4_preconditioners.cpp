// Figure 4 reproduction: the PCG variants with SOR (symmetric), MG and
// GAMG preconditioners on the 125-pt Poisson problem at 120 nodes.
//
// Paper findings: PIPE-PsCG gives the largest speedup for every
// preconditioner; PsCG falls *below* PCG for the expensive preconditioners
// (its extra PC per iteration is no longer amortized by the saved
// allreduces); PIPE-PsCG's margin over OATI shrinks as the preconditioner
// gets more computationally intensive (GAMG) because OATI's two-PC overlap
// already hides most of the allreduce.
#include <cstdio>

#include "pipescg/base/cli.hpp"
#include "pipescg/bench_support/figures.hpp"
#include "pipescg/precond/amg.hpp"
#include "pipescg/sparse/poisson125.hpp"

using namespace pipescg;

int main(int argc, char** argv) {
  CliParser cli("bench_fig4_preconditioners",
                "Fig. 4: different preconditioners with the CG variants");
  cli.add_option("n", "32", "grid points per dimension (paper: 100)");
  cli.add_option("rtol", "1e-5", "relative tolerance");
  cli.add_option("s", "3", "s-step depth");
  cli.add_option("nodes", "120", "node count for the comparison");
  if (!cli.parse(argc, argv)) return 0;

  const std::size_t n = static_cast<std::size_t>(cli.integer("n"));
  const int nodes = static_cast<int>(cli.integer("nodes"));
  const sparse::CsrMatrix a = sparse::make_poisson125_csr(n);

  krylov::SolverOptions opts;
  opts.rtol = cli.real("rtol");
  opts.s = static_cast<int>(cli.integer("s"));
  opts.max_iterations = 100000;
  opts.norm = krylov::NormType::kPreconditioned;

  const std::vector<std::string> methods = {
      "pcg", "pipecg", "pipecg3", "pipecg-oati", "pscg", "pipe-pscg"};
  const std::vector<std::string> pcs = {"ssor", "mg", "gamg"};
  const sim::Timeline timeline(sim::MachineModel::cray_xc40_like());

  std::printf("Fig. 4: 125-pt Poisson %zu^3, rtol %.0e, %d nodes, s=%d\n",
              n, opts.rtol, nodes, opts.s);
  std::printf("speedup vs PCG@1node (with the same preconditioner)\n");
  std::printf("%-8s", "pc");
  for (const auto& m : methods) std::printf(" %12s", m.c_str());
  std::printf("%10s\n", "iters(pcg)");

  // Multigrid configured to a deliberately weak cycle (degree-1 smoother,
  // unsmoothed aggregation): a textbook V-cycle solves this Poisson problem
  // in ~7 iterations, leaving nothing for any pipelining to amortize over;
  // the weak cycle approximates the paper's (evidently weaker) PETSc MG.
  auto make_pc = [&](const std::string& name)
      -> std::unique_ptr<precond::Preconditioner> {
    precond::MultigridPreconditioner::Options weak;
    weak.smoother_degree = 1;
    weak.smoothed_prolongation = false;
    if (name == "mg") return precond::make_geometric_mg(a, weak);
    if (name == "gamg") return precond::make_amg(a, weak);
    return precond::make_preconditioner(name, a);
  };

  for (const std::string& pc_name : pcs) {
    const auto pc = make_pc(pc_name);
    double baseline = 0.0;
    std::size_t pcg_iters = 0;
    std::printf("%-8s", pc_name.c_str());
    for (const std::string& m : methods) {
      const bench::RunRecord run = bench::run_method(m, a, pc.get(), opts);
      if (m == "pcg") {
        baseline = timeline.seconds_at_nodes(run.trace, 1);
        pcg_iters = run.stats.iterations;
      }
      if (!run.stats.converged) {
        std::printf(" %12s", "n/c");
        continue;
      }
      std::printf(" %11.2fx",
                  baseline / timeline.seconds_at_nodes(run.trace, nodes));
    }
    std::printf("%10zu\n", pcg_iters);
  }
  std::printf(
      "\n(expected shape per the paper: PIPE-PsCG best in every row; PsCG "
      "below PCG for these expensive preconditioners; PIPE-PsCG's margin "
      "over OATI smallest for GAMG)\n");
  return 0;
}
