// Service-layer throughput benchmark: many solves against ONE operator.
//
// The per-figure benches measure one solve; this one measures the serving
// story the service layer exists for.  Two modes run back to back on the
// same request stream:
//
//   cold:  a fresh service::Session per solve -- every request pays
//          partition + DistCsr + (optional) matrix-powers closure +
//          preconditioner setup + rank-team spawn, the pre-session cost
//          shape of the repo's one-shot drivers;
//   warm:  ONE Session serves the whole stream through an AdmissionQueue,
//          so setup is paid once and compatible requests leave the queue
//          as batched multi-RHS solves (krylov::scg_multi_solve -- one
//          fused allreduce per outer iteration for the whole batch).
//
// Reported: solves/sec in both modes, per-solve latency quantiles
// (p50/p95/p99 from the session's LatencyHistogram), queue-wait quantiles,
// measured cold vs warm setup seconds, and the batching rate.  --bench-json
// writes BENCH_service.json for the CI service-smoke gate, which asserts
// solves/sec > 0 and warm_setup_seconds_per_solve < cold_setup_seconds_per_
// solve (amortization must actually show up, not just be claimed).
//
//   ./bench_service [--n 20] [--ranks 2] [--solves 24] [--batch 8]
//                   [--method scg-sspmv] [--s 3] [--rtol 1e-6]
//                   [--mpk on|off] [--bench-json BENCH_service.json]
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "pipescg/pipescg.hpp"

using namespace pipescg;

namespace {

// Deterministic per-request right-hand sides: b_j = A x*_j with a smoothly
// varying x*_j, so every request is a distinct system against the same
// operator (no RNG: reruns produce byte-identical request streams).
std::vector<double> make_rhs(const sparse::CsrMatrix& a, std::size_t j) {
  std::vector<double> xstar(a.rows());
  for (std::size_t i = 0; i < xstar.size(); ++i)
    xstar[i] = 1.0 + 0.5 * std::sin(static_cast<double>(i + 3 * j + 1));
  std::vector<double> b(a.rows(), 0.0);
  a.apply(xstar, b);
  return b;
}

void print_histogram(const char* name, const obs::LatencyHistogram& h) {
  std::printf("  %-12s: n=%zu mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms\n",
              name, h.count(), 1e3 * h.mean_seconds(),
              1e3 * h.quantile(0.50), 1e3 * h.quantile(0.95),
              1e3 * h.quantile(0.99));
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_service",
                "solver-as-a-service throughput: cold per-solve setup vs one "
                "warm session with admission-queue batching");
  cli.add_option("n", "20", "grid size per dimension (thermal2-like 2D)");
  cli.add_option("ranks", "2", "persistent rank-team size");
  cli.add_option("solves", "24", "requests in the stream");
  cli.add_option("batch", "8", "admission-queue batch cap (multi-RHS width)");
  cli.add_option("method", "scg-sspmv",
                 "solver name (scg-sspmv is the batchable method)");
  cli.add_option("s", "3", "s-step depth");
  cli.add_flag("auto-s",
               "override --s with the machine model's recommended depth for "
               "this operator and rank count (sim::suggest_s, the paper's "
               "future-work auto-tuner)");
  cli.add_option("rtol", "1e-6", "relative tolerance");
  cli.add_option("cold-solves", "4",
                 "requests measured in cold mode (each pays full setup)");
  cli.add_mpk_option();
  cli.add_option("bench-json", "",
                 "write the machine-readable BENCH summary here");
  if (!cli.parse(argc, argv)) return 0;

  const std::size_t n = static_cast<std::size_t>(cli.integer("n"));
  const int ranks = static_cast<int>(cli.integer("ranks"));
  const std::size_t solves = static_cast<std::size_t>(cli.integer("solves"));
  const std::size_t cold_solves = std::min(
      static_cast<std::size_t>(cli.integer("cold-solves")), solves);
  const std::size_t max_batch = static_cast<std::size_t>(cli.integer("batch"));
  const std::string method = cli.str("method");

  const sparse::CsrMatrix a = sparse::make_thermal2_like(n, n);
  krylov::SolverOptions opts;
  opts.s = static_cast<int>(cli.integer("s"));
  opts.rtol = cli.real("rtol");
  if (cli.flag("auto-s")) {
    const precond::JacobiPreconditioner pc(a);
    const sim::SRecommendation rec =
        sim::suggest_s(sim::MachineModel::cray_xc40_like(), a.stats(),
                       pc.cost_profile(), ranks);
    std::printf("auto-s: model recommends s=%d (%.2fus/iteration)\n", rec.s,
                1e6 * rec.seconds_per_iteration);
    opts.s = rec.s;
  }

  service::SessionConfig config;
  config.ranks = ranks;
  config.use_preconditioner = krylov::solver_uses_preconditioner(method);
  config.mpk = cli.mpk_enabled();
  config.s = opts.s;

  std::printf("bench_service: %zu unknowns, %d ranks, %zu solves, method=%s "
              "s=%d mpk=%s\n",
              a.rows(), ranks, solves, method.c_str(), opts.s,
              config.mpk ? "on" : "off");

  // --- cold mode: a fresh session (full setup + team spawn) per solve -----
  double cold_setup_seconds = 0.0;
  double cold_wall_seconds = 0.0;
  std::size_t cold_iterations = 0;
  {
    const WallTimer wall;
    for (std::size_t j = 0; j < cold_solves; ++j) {
      service::Session session(a, config);
      cold_setup_seconds += session.setup_seconds();
      service::SolveContext ctx(method, make_rhs(a, j), opts);
      session.solve(ctx);
      if (ctx.state() != service::JobState::kDone || !ctx.converged()) {
        std::printf("cold solve %zu failed (%s): %s\n", j,
                    to_string(ctx.state()), ctx.error().c_str());
        return 1;
      }
      cold_iterations += ctx.stats().iterations;
    }
    cold_wall_seconds = wall.seconds();
  }
  const double cold_rate =
      cold_solves / std::max(cold_wall_seconds, 1e-12);
  std::printf("cold : %zu solves in %.3fs (%.2f solves/s), setup %.3fms per "
              "solve\n",
              cold_solves, cold_wall_seconds, cold_rate,
              1e3 * cold_setup_seconds / static_cast<double>(cold_solves));

  // --- warm mode: one session + admission queue over the full stream ------
  service::Session session(a, config);
  std::vector<std::unique_ptr<service::SolveContext>> ctxs;
  ctxs.reserve(solves);
  for (std::size_t j = 0; j < solves; ++j)
    ctxs.push_back(std::make_unique<service::SolveContext>(
        method, make_rhs(a, j), opts));

  service::AdmissionQueue queue;
  double warm_wall_seconds = 0.0;
  std::size_t executed = 0;
  {
    const WallTimer wall;
    for (auto& ctx : ctxs) queue.submit(ctx.get());
    executed = session.drain(queue, max_batch);
    warm_wall_seconds = wall.seconds();
  }
  std::size_t warm_iterations = 0;
  for (const auto& ctx : ctxs) {
    if (ctx->state() != service::JobState::kDone || !ctx->converged()) {
      std::printf("warm solve failed (%s): %s\n", to_string(ctx->state()),
                  ctx->error().c_str());
      return 1;
    }
    warm_iterations += ctx->stats().iterations;
  }
  const double warm_rate = executed / std::max(warm_wall_seconds, 1e-12);
  const double warm_setup_per_solve =
      session.setup_seconds() / static_cast<double>(std::max<std::size_t>(
                                    session.solves(), 1));
  const double cold_setup_per_solve =
      cold_setup_seconds / static_cast<double>(cold_solves);
  std::printf("warm : %zu solves in %.3fs (%.2f solves/s), setup %.3fms "
              "amortized per solve, %zu team runs, %zu batched drains\n",
              executed, warm_wall_seconds, warm_rate,
              1e3 * warm_setup_per_solve, session.team_runs(),
              queue.batches());
  print_histogram("latency", session.solve_latency());
  print_histogram("queue wait", session.queue_latency());
  std::printf("  iterations  : %.1f per solve cold, %.1f per solve warm (the "
              "cache changes cost, never the trajectory)\n",
              static_cast<double>(cold_iterations) /
                  static_cast<double>(cold_solves),
              static_cast<double>(warm_iterations) /
                  static_cast<double>(std::max<std::size_t>(executed, 1)));

  const std::string json_path = cli.str("bench-json");
  if (!json_path.empty()) {
    obs::json::Value doc = obs::json::Value::object();
    doc.set("bench", "service");
    doc.set("unknowns", a.rows());
    doc.set("ranks", ranks);
    doc.set("method", method);
    doc.set("s", opts.s);
    doc.set("mpk", config.mpk);
    doc.set("solves", executed);
    doc.set("cold_solves", cold_solves);
    doc.set("max_batch", max_batch);
    // Determinism convention: every wall-clock-derived key carries a
    // _seconds/_per_second suffix so the CI byte-identity grep skips them.
    obs::json::Value cold = obs::json::Value::object();
    cold.set("wall_seconds", cold_wall_seconds);
    cold.set("solves_per_second", cold_rate);
    cold.set("setup_seconds_per_solve", cold_setup_per_solve);
    cold.set("iterations", cold_iterations);
    doc.set("cold", std::move(cold));
    obs::json::Value warm = obs::json::Value::object();
    warm.set("wall_seconds", warm_wall_seconds);
    warm.set("solves_per_second", warm_rate);
    warm.set("setup_seconds_per_solve", warm_setup_per_solve);
    warm.set("setup_seconds", session.setup_seconds());
    warm.set("iterations", warm_iterations);
    warm.set("team_runs", session.team_runs());
    warm.set("queue_batches", queue.batches());
    warm.set("p50_latency_seconds", session.solve_latency().quantile(0.50));
    warm.set("p95_latency_seconds", session.solve_latency().quantile(0.95));
    warm.set("p99_latency_seconds", session.solve_latency().quantile(0.99));
    warm.set("p99_queue_wait_seconds",
             session.queue_latency().quantile(0.99));
    doc.set("warm", std::move(warm));
    // Wall-clock-robust ratios (the quantities worth tracking in the perf
    // trajectory): batching rate, measured amortization, and the modeled
    // break-even request count next to the measured story.
    obs::json::Value service = obs::json::Value::object();
    service.set("warm_per_cold_setup",
                warm_setup_per_solve / std::max(cold_setup_per_solve, 1e-300));
    service.set("batched_fraction",
                executed == 0
                    ? 0.0
                    : 1.0 - static_cast<double>(session.team_runs()) /
                                static_cast<double>(executed));
    const sim::MachineModel model = sim::MachineModel::cray_xc40_like();
    const double modeled_setup =
        model.setup_seconds(a.stats(), ranks, config.mpk ? opts.s : 1,
                            config.use_preconditioner);
    service.set("modeled_setup_break_even_solves",
                modeled_setup / std::max(model.spmv_seconds(a.stats(), ranks),
                                         1e-300));
    obs::json::Value ratios = obs::json::Value::object();
    ratios.set("service", std::move(service));
    doc.set("ratios", std::move(ratios));
    obs::json::write_file(json_path, doc);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
