// Figure 3 reproduction: sensitivity of PIPE-PsCG to the s parameter on the
// 125-pt Poisson problem, up to 140 nodes.
//
// Paper finding: s = 3 wins until ~70 nodes, s = 4 until ~100, s = 5 beyond
// -- larger s trades FLOP overhead (O(s^3) recurrence work per s iterations)
// for fewer, better-overlapped allreduces, which only pays off once the
// allreduce latency is large.
//
// Ablation rider (DESIGN.md section 5): prints each run's achieved residual
// floor and the kernel overhead added by the stability replacement rebuilds
// at s >= 4.
#include <cstdio>
#include <fstream>

#include "pipescg/base/cli.hpp"
#include "pipescg/bench_support/figures.hpp"
#include "pipescg/krylov/basis.hpp"
#include "pipescg/obs/metrics.hpp"
#include "pipescg/obs/telemetry.hpp"
#include "pipescg/par/comm.hpp"
#include <algorithm>

#include "pipescg/precond/jacobi.hpp"
#include "pipescg/sim/auto_tune.hpp"
#include "pipescg/sparse/poisson125.hpp"
#include "pipescg/sparse/sell_matrix.hpp"

using namespace pipescg;

int main(int argc, char** argv) {
  CliParser cli("bench_fig3_s_sensitivity",
                "Fig. 3: PIPE-PsCG sensitivity to s");
  cli.add_option("n", "64", "grid points per dimension (paper: 100)");
  cli.add_option("rtol", "1e-5", "relative tolerance");
  cli.add_option("max-nodes", "140", "largest node count in the sweep");
  cli.add_option("trace-nodes", "40",
                 "node count the modeled --trace-out schedule is priced at");
  cli.add_option("bench-json", "",
                 "write machine-readable BENCH_<name>.json (per-method "
                 "iterations, modeled overlap efficiency, speedups)");
  cli.add_format_option();
  cli.add_stability_options();
  cli.add_observability_options();
  if (!cli.parse(argc, argv)) return 0;
  const sparse::SparseFormat format =
      sparse::parse_sparse_format(cli.str("format"));

  const std::size_t n = static_cast<std::size_t>(cli.integer("n"));
  // Default: the matrix-free stencil operator (historical fig3 baselines);
  // --format sell solves through the assembled matrix's SELL-C-sigma form.
  const auto op = sparse::make_poisson125_operator(n);
  const auto jacobi = bench::make_stencil_jacobi(*op);
  sparse::CsrMatrix csr;
  sparse::SellMatrix sell;
  std::unique_ptr<precond::JacobiPreconditioner> csr_jacobi;
  const sparse::LinearOperator* aop = op.get();
  const precond::JacobiPreconditioner* pcp = jacobi.get();
  if (format == sparse::SparseFormat::kSell) {
    csr = sparse::make_poisson125_csr(n);
    sell = sparse::SellMatrix(csr);
    csr_jacobi = std::make_unique<precond::JacobiPreconditioner>(csr);
    aop = &sell;
    pcp = csr_jacobi.get();
    std::printf("format sell: C=%zu sigma=%zu padding %.3f\n", sell.chunk(),
                sell.sigma(), sell.padding_ratio());
  }

  std::printf("Fig. 3: PIPE-PsCG with s = 3, 4, 5 on 125-pt Poisson %zu^3\n",
              n);

  const std::string metrics_out = cli.str("metrics-out");
  const double metrics_period_ms = cli.real("metrics-period-ms");
  auto registry = !metrics_out.empty()
                      ? std::make_unique<obs::metrics::Registry>()
                      : nullptr;
  auto sampler = registry && metrics_period_ms > 0.0
                     ? std::make_unique<obs::metrics::MetricsSampler>(
                           *registry, metrics_out, metrics_period_ms)
                     : nullptr;
  if (sampler) sampler->start();

  std::vector<bench::RunRecord> runs;
  std::vector<bench::RunRecord> pure_runs;  // replacement disabled, for the
                                            // overhead ablation
  std::string telemetry;
  for (int s : {3, 4, 5}) {
    krylov::SolverOptions opts;
    opts.rtol = cli.real("rtol");
    opts.s = s;
    opts.max_iterations = 100000;
    opts.norm = krylov::NormType::kPreconditioned;
    krylov::apply_stability_cli(cli, opts);
    obs::ConvergenceTelemetry telem("s=" + std::to_string(s));
    const obs::metrics::Labels labels = {
        {"method", "pipe-pscg"}, {"s", std::to_string(s)}, {"bench", "fig3"}};
    auto live = registry ? std::make_unique<obs::metrics::LiveSolve>(*registry,
                                                                     labels)
                         : nullptr;
    {
      obs::ConvergenceTelemetry::Install install(
          cli.str("telemetry-out").empty() ? nullptr : &telem);
      const obs::metrics::LiveSolve::Install live_install(live.get());
      runs.push_back(bench::run_method("pipe-pscg", *aop, pcp, opts));
    }
    if (registry)
      obs::metrics::register_stats(*registry, runs.back().stats, labels);
    telemetry += telem.to_jsonl();
    runs.back().method = "s=" + std::to_string(s);

    opts.replacement_period = -1;
    opts.max_iterations = 3000;  // the pure run may only stall; cap it
    pure_runs.push_back(
        bench::run_method("pipe-pscg", *aop, pcp, opts));
  }

  // The speedup reference is PCG at one node, as in Fig. 1.
  {
    krylov::SolverOptions opts;
    opts.rtol = cli.real("rtol");
    opts.max_iterations = 100000;
    opts.norm = krylov::NormType::kPreconditioned;
    runs.push_back(bench::run_method("pcg", *aop, pcp, opts));
  }
  bench::print_run_summaries(runs);

  const sim::Timeline timeline(sim::MachineModel::cray_xc40_like());
  const bench::ScalingReport report = bench::make_scaling_report(
      runs, timeline,
      bench::node_sweep(static_cast<int>(cli.integer("max-nodes"))), "pcg");
  bench::print_scaling_report(report,
                              "Fig. 3: PIPE-PsCG s-sensitivity (speedups)");
  if (cli.flag("profile")) bench::print_run_counters(runs);
  const int trace_nodes = static_cast<int>(cli.integer("trace-nodes"));
  const int trace_ranks = timeline.machine().ranks_for_nodes(trace_nodes);
  if (cli.flag("analyze"))
    bench::print_modeled_overlap(runs, timeline, trace_ranks);
  bench::write_modeled_trace(runs, timeline, trace_nodes,
                             cli.str("trace-out"));
  bench::write_bench_report(runs, report, "Fig. 3: PIPE-PsCG s-sensitivity",
                            cli.str("report-out"));
  bench::write_bench_json("fig3", runs, report, timeline, trace_ranks,
                          aop->stats(), cli.str("bench-json"));
  if (!cli.str("telemetry-out").empty()) {
    std::ofstream os(cli.str("telemetry-out"), std::ios::binary);
    os << telemetry;
    std::printf("wrote telemetry to %s\n", cli.str("telemetry-out").c_str());
  }
  if (registry) {
    obs::metrics::register_fault(*registry, /*injected_faults=*/0,
                                 /*recoveries=*/0, par::comm_watchdog_trips(),
                                 {{"bench", "fig3"}});
    if (sampler) {
      sampler->stop();
      std::printf("wrote %zu metrics snapshots to %s\n", sampler->samples(),
                  metrics_out.c_str());
    } else {
      registry->write_textfile(metrics_out);
      std::printf("wrote metrics exposition to %s\n", metrics_out.c_str());
    }
  }

  // Model view with *pure recurrences* (no stability anchoring): the cost
  // structure the paper measures.  This exhibits the paper's crossovers --
  // larger s wins once the allreduce dominates -- which the measured runs
  // above cannot show because this implementation must anchor s >= 4 to
  // keep it convergent (EXPERIMENTS.md discusses the deviation).
  std::printf("\nmodel view, pure recurrences (us per CG iteration):\n");
  std::printf("%8s %10s %10s %10s %12s\n", "nodes", "s=3", "s=4", "s=5",
              "best");
  for (int nodes : {10, 40, 70, 100, 140}) {
    const int ranks = timeline.machine().ranks_for_nodes(nodes);
    double t[3];
    for (int s = 3; s <= 5; ++s)
      t[s - 3] = sim::pipe_pscg_seconds_per_iteration(
          timeline.machine(), op->stats(), jacobi->cost_profile(), ranks, s,
          /*include_anchoring=*/false);
    const int best = 3 + static_cast<int>(
                             std::min_element(t, t + 3) - t);
    std::printf("%8d %10.2f %10.2f %10.2f %9s s=%d\n", nodes, t[0] * 1e6,
                t[1] * 1e6, t[2] * 1e6, "", best);
  }

  // The paper's future work, implemented: model-recommended s per node
  // count (sim::suggest_s).
  std::printf("\nauto-s (paper Section VII future work, implemented):\n");
  std::printf("%8s %12s %22s\n", "nodes", "suggested s",
              "modeled us/iteration");
  const bool shifted_basis =
      krylov::parse_basis_type(cli.str("basis")) !=
      krylov::BasisType::kMonomial;
  for (int nodes : {10, 40, 70, 100, 140}) {
    const sim::SRecommendation rec = sim::suggest_s(
        timeline.machine(), op->stats(), jacobi->cost_profile(),
        timeline.machine().ranks_for_nodes(nodes), /*max_s=*/5,
        shifted_basis);
    std::printf("%8d %12d %22.2f\n", nodes, rec.s,
                rec.seconds_per_iteration * 1e6);
  }

  std::printf("\nablation: stability replacement rebuilds (s >= 4)\n");
  std::printf("%4s %18s %18s %14s\n", "s", "spmvs(stabilized)", "spmvs(pure)",
              "pure outcome");
  const int svals[3] = {3, 4, 5};
  for (std::size_t i = 0; i < 3; ++i) {
    const auto stabilized = runs[i].trace.counters();
    const auto pure = pure_runs[i].trace.counters();
    std::printf("%4d %18zu %18zu %11s/%zu\n", svals[i], stabilized.spmvs,
                pure.spmvs,
                pure_runs[i].stats.converged
                    ? "converged"
                    : (pure_runs[i].stats.stagnated ? "stagnated" : "maxed"),
                pure_runs[i].stats.iterations);
  }
  return 0;
}
