// Solve a user-provided Matrix Market system, or -- when no file is given --
// a generated SuiteSparse-like surrogate, comparing every CG variant.
//
//   ./matrix_market_solve [--matrix path.mtx] [--surrogate thermal2]
//                         [--rtol 1e-5] [--pc jacobi]
//                         [--profile] [--analyze] [--trace-out trace.json]
//                         [--report-out report.json] [--trace-nodes 4]
//                         [--telemetry-out telemetry.jsonl]
//                         [--metrics-out metrics.prom] [--metrics-period-ms 250]
//
// This is the workflow for reproducing the paper's SuiteSparse experiments
// with the real matrices once they are available offline.
//
// Observability: --profile prints each method's kernel counters from the
// recorded event trace; --analyze prints the modeled communication-hiding
// table (how much allreduce time the machine model expects each variant to
// hide at --trace-nodes nodes); --telemetry-out records one JSONL line per
// CG iteration for every method (tagged with the method name); --trace-out
// writes the machine-model schedule of every method at --trace-nodes nodes
// as one Chrome trace-event file (one process per method, comparable side
// by side in Perfetto); --report-out writes all solve statistics as
// structured JSON.
#include <cstdio>
#include <fstream>

#include "pipescg/bench_support/figures.hpp"
#include "pipescg/pipescg.hpp"

using namespace pipescg;

int main(int argc, char** argv) {
  CliParser cli("matrix_market_solve",
                "solve a Matrix Market (or surrogate) SPD system with every "
                "CG variant");
  cli.add_option("matrix", "", "path to a .mtx file (coordinate real)");
  cli.add_option("surrogate", "thermal2",
                 "ecology2|thermal2|serena when no --matrix is given");
  cli.add_option("size", "96", "surrogate grid size per dimension");
  cli.add_option("rtol", "1e-5", "relative tolerance");
  cli.add_option("pc", "jacobi", "preconditioner: jacobi|ssor|chebyshev|mg|gamg");
  cli.add_option("s", "3", "s-step depth for the s-step methods");
  cli.add_option("trace-nodes", "4",
                 "node count the modeled --trace-out schedule is priced at");
  cli.add_format_option();
  cli.add_stability_options();
  cli.add_observability_options();
  if (!cli.parse(argc, argv)) return 0;
  const sparse::SparseFormat format =
      sparse::parse_sparse_format(cli.str("format"));

  sparse::CsrMatrix a = [&]() {
    if (!cli.str("matrix").empty())
      return sparse::read_matrix_market_file(cli.str("matrix"));
    const std::size_t size = static_cast<std::size_t>(cli.integer("size"));
    const std::string kind = cli.str("surrogate");
    if (kind == "ecology2") return sparse::make_ecology2_like(size, size);
    if (kind == "thermal2") return sparse::make_thermal2_like(size, size);
    if (kind == "serena")
      return sparse::make_serena_like(std::max<std::size_t>(size / 4, 8));
    PIPESCG_FAIL("unknown surrogate '" + kind + "'");
  }();

  std::printf("matrix %s: %zu rows, %zu nnz, symmetry error %.2e\n",
              a.name().c_str(), a.rows(), a.nnz(), a.symmetry_error());
  const auto pc = precond::make_preconditioner(cli.str("pc"), a);

  // --format sell: solvers apply the SELL-C-sigma conversion instead of the
  // CSR (bitwise-identical results; the preconditioner and the spectrum
  // probe keep reading the CSR structure).
  sparse::SellMatrix sell;
  if (format == sparse::SparseFormat::kSell) {
    sell = sparse::SellMatrix(a);
    std::printf("format sell: C=%zu sigma=%zu padding %.3f\n", sell.chunk(),
                sell.sigma(), sell.padding_ratio());
  }
  const sparse::LinearOperator& op =
      format == sparse::SparseFormat::kSell
          ? static_cast<const sparse::LinearOperator&>(sell)
          : static_cast<const sparse::LinearOperator&>(a);

  // Free spectrum estimate from a PCG probe (Lanczos coefficients).
  {
    krylov::SerialEngine engine(op, pc.get());
    krylov::Vec ones = engine.new_vec();
    for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
    krylov::Vec b = engine.new_vec();
    engine.apply_op(ones, b);
    krylov::Vec x = engine.new_vec();
    krylov::SolverOptions probe;
    probe.rtol = cli.real("rtol");
    probe.max_iterations = 2000;
    probe.estimate_spectrum = true;
    const auto st = krylov::make_solver("pcg")->solve(engine, b, x, probe);
    if (st.condition_est > 0.0)
      std::printf("preconditioned spectrum estimate: lambda in [%.3e, %.3e],"
                  " kappa ~ %.3g\n",
                  st.lambda_min_est, st.lambda_max_est, st.condition_est);
  }

  krylov::SolverOptions opts;
  opts.rtol = cli.real("rtol");
  opts.s = static_cast<int>(cli.integer("s"));
  opts.max_iterations = 200000;
  opts.compute_true_residual = true;
  krylov::apply_stability_cli(cli, opts);

  const bool profile = cli.flag("profile");
  const bool analyze = cli.flag("analyze");
  const bool want_trace = !cli.str("trace-out").empty();
  const bool want_report = !cli.str("report-out").empty();
  const bool record = profile || analyze || want_trace || want_report;

  // Unified metrics registry (--metrics-out): per-method solve stats plus
  // live gauges refreshed as each solve progresses; with a period the
  // sampler makes the whole per-method sweep observable while running.
  const std::string metrics_out = cli.str("metrics-out");
  const double metrics_period_ms = cli.real("metrics-period-ms");
  auto registry = !metrics_out.empty()
                      ? std::make_unique<obs::metrics::Registry>()
                      : nullptr;
  auto sampler = registry && metrics_period_ms > 0.0
                     ? std::make_unique<obs::metrics::MetricsSampler>(
                           *registry, metrics_out, metrics_period_ms)
                     : nullptr;
  if (sampler) sampler->start();

  const sim::Timeline timeline(sim::MachineModel::cray_xc40_like());
  const int trace_ranks = timeline.machine().ranks_for_nodes(
      static_cast<int>(cli.integer("trace-nodes")));

  obs::ChromeTraceBuilder trace_builder;
  obs::json::Value report = obs::json::Value::object();
  report.set("program", "matrix_market_solve");
  report.set("matrix", a.name());
  report.set("rows", a.rows());
  report.set("nnz", a.nnz());
  report.set("preconditioner", cli.str("pc"));
  report.set("format", sparse::to_string(format));
  report.set("rtol", cli.real("rtol"));
  obs::json::Value method_reports = obs::json::Value::array();

  std::printf("%-14s %10s %12s %12s %8s\n", "method", "iters", "rnorm",
              "true_res", "status");
  int pid = 0;
  std::vector<bench::RunRecord> analyze_runs;
  std::string telemetry;
  for (const std::string& name : krylov::solver_names()) {
    sim::EventTrace trace;
    double wall = 0.0;
    krylov::SerialEngine engine(
        op, krylov::solver_uses_preconditioner(name) ? pc.get() : nullptr,
        record ? &trace : nullptr);
    krylov::Vec ones = engine.new_vec();
    for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
    krylov::Vec b = engine.new_vec();
    engine.apply_op(ones, b);
    krylov::Vec x = engine.new_vec();
    krylov::SolveStats stats;
    obs::ConvergenceTelemetry telem(name);
    const obs::metrics::Labels method_labels = {{"method", name},
                                                {"matrix", a.name()}};
    auto live = registry ? std::make_unique<obs::metrics::LiveSolve>(
                               *registry, method_labels)
                         : nullptr;
    {
      const obs::ConvergenceTelemetry::Install install(
          cli.str("telemetry-out").empty() ? nullptr : &telem);
      const obs::metrics::LiveSolve::Install live_install(live.get());
      ScopedTimer timer(wall);
      stats = krylov::make_solver(name)->solve(engine, b, x, opts);
    }
    if (registry) obs::metrics::register_stats(*registry, stats, method_labels);
    telemetry += telem.to_jsonl();
    std::printf("%-14s %10zu %12.3e %12.3e %8s\n", name.c_str(),
                stats.iterations, stats.final_rnorm, stats.true_residual,
                stats.converged ? "ok"
                                : (stats.stagnated ? "stall" : "maxit"));
    if (profile) {
      const sim::EventTrace::Counters c = trace.counters();
      std::printf("  counters: spmvs=%zu pc_applies=%zu allreduces=%zu "
                  "iterations=%zu (wall %.3fs)\n",
                  c.spmvs, c.pc_applies, c.allreduces, c.iterations, wall);
    }
    if (want_trace) {
      std::vector<sim::ScheduledSpan> schedule;
      timeline.evaluate(trace, trace_ranks, &schedule);
      obs::add_schedule(trace_builder, schedule, pid,
                        name + " @ " + std::to_string(trace_ranks) +
                            " ranks (modeled)");
      ++pid;
    }
    if (want_report) {
      obs::json::Value entry = obs::solve_report(stats, nullptr);
      entry.set("trace_counters", obs::counters_to_json(trace.counters()));
      entry.set("wall_seconds", wall);
      const sim::TimelineResult modeled = timeline.evaluate(trace, trace_ranks);
      obs::json::Value m = obs::json::Value::object();
      m.set("ranks", trace_ranks);
      m.set("seconds", modeled.seconds);
      m.set("compute_seconds", modeled.compute_seconds);
      m.set("allreduce_wait_seconds", modeled.allreduce_wait_seconds);
      m.set("allreduce_total_seconds", modeled.allreduce_total_seconds);
      m.set("hidden_seconds", modeled.allreduce_total_seconds -
                                  modeled.allreduce_wait_seconds);
      m.set("overlap_efficiency",
            modeled.allreduce_total_seconds > 0.0
                ? (modeled.allreduce_total_seconds -
                   modeled.allreduce_wait_seconds) /
                      modeled.allreduce_total_seconds
                : 1.0);
      entry.set("modeled", std::move(m));
      method_reports.push_back(std::move(entry));
    }
    if (analyze) {
      bench::RunRecord rec;
      rec.method = name;
      rec.stats = stats;
      rec.trace = std::move(trace);
      analyze_runs.push_back(std::move(rec));
    }
  }

  if (analyze)
    bench::print_modeled_overlap(analyze_runs, timeline, trace_ranks);

  if (want_trace) {
    obs::json::write_file(cli.str("trace-out"), trace_builder.build());
    std::printf("wrote modeled Chrome trace to %s (load in Perfetto)\n",
                cli.str("trace-out").c_str());
  }
  if (want_report) {
    report.set("methods", std::move(method_reports));
    obs::json::write_file(cli.str("report-out"), report);
    std::printf("wrote solve report to %s\n", cli.str("report-out").c_str());
  }
  if (!cli.str("telemetry-out").empty()) {
    std::ofstream os(cli.str("telemetry-out"), std::ios::binary);
    os << telemetry;
    std::printf("wrote telemetry to %s\n", cli.str("telemetry-out").c_str());
  }
  if (registry) {
    obs::metrics::register_fault(*registry, /*injected_faults=*/0,
                                 /*recoveries=*/0, par::comm_watchdog_trips(),
                                 {{"matrix", a.name()}});
    if (sampler) {
      sampler->stop();
      std::printf("wrote %zu metrics snapshots to %s\n", sampler->samples(),
                  metrics_out.c_str());
    } else {
      registry->write_textfile(metrics_out);
      std::printf("wrote metrics exposition to %s\n", metrics_out.c_str());
    }
  }
  return 0;
}
