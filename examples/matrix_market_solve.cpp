// Solve a user-provided Matrix Market system, or -- when no file is given --
// a generated SuiteSparse-like surrogate, comparing every CG variant.
//
//   ./matrix_market_solve [--matrix path.mtx] [--surrogate thermal2]
//                         [--rtol 1e-5] [--pc jacobi]
//
// This is the workflow for reproducing the paper's SuiteSparse experiments
// with the real matrices once they are available offline.
#include <cstdio>

#include "pipescg/pipescg.hpp"

using namespace pipescg;

int main(int argc, char** argv) {
  CliParser cli("matrix_market_solve",
                "solve a Matrix Market (or surrogate) SPD system with every "
                "CG variant");
  cli.add_option("matrix", "", "path to a .mtx file (coordinate real)");
  cli.add_option("surrogate", "thermal2",
                 "ecology2|thermal2|serena when no --matrix is given");
  cli.add_option("size", "96", "surrogate grid size per dimension");
  cli.add_option("rtol", "1e-5", "relative tolerance");
  cli.add_option("pc", "jacobi", "preconditioner: jacobi|ssor|chebyshev|mg|gamg");
  if (!cli.parse(argc, argv)) return 0;

  sparse::CsrMatrix a = [&]() {
    if (!cli.str("matrix").empty())
      return sparse::read_matrix_market_file(cli.str("matrix"));
    const std::size_t size = static_cast<std::size_t>(cli.integer("size"));
    const std::string kind = cli.str("surrogate");
    if (kind == "ecology2") return sparse::make_ecology2_like(size, size);
    if (kind == "thermal2") return sparse::make_thermal2_like(size, size);
    if (kind == "serena")
      return sparse::make_serena_like(std::max<std::size_t>(size / 4, 8));
    PIPESCG_FAIL("unknown surrogate '" + kind + "'");
  }();

  std::printf("matrix %s: %zu rows, %zu nnz, symmetry error %.2e\n",
              a.name().c_str(), a.rows(), a.nnz(), a.symmetry_error());
  const auto pc = precond::make_preconditioner(cli.str("pc"), a);

  // Free spectrum estimate from a PCG probe (Lanczos coefficients).
  {
    krylov::SerialEngine engine(a, pc.get());
    krylov::Vec ones = engine.new_vec();
    for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
    krylov::Vec b = engine.new_vec();
    engine.apply_op(ones, b);
    krylov::Vec x = engine.new_vec();
    krylov::SolverOptions probe;
    probe.rtol = cli.real("rtol");
    probe.max_iterations = 2000;
    probe.estimate_spectrum = true;
    const auto st = krylov::make_solver("pcg")->solve(engine, b, x, probe);
    if (st.condition_est > 0.0)
      std::printf("preconditioned spectrum estimate: lambda in [%.3e, %.3e],"
                  " kappa ~ %.3g\n",
                  st.lambda_min_est, st.lambda_max_est, st.condition_est);
  }

  krylov::SolverOptions opts;
  opts.rtol = cli.real("rtol");
  opts.max_iterations = 200000;
  opts.compute_true_residual = true;

  std::printf("%-14s %10s %12s %12s %8s\n", "method", "iters", "rnorm",
              "true_res", "status");
  for (const std::string& name : krylov::solver_names()) {
    krylov::SerialEngine engine(
        a, krylov::solver_uses_preconditioner(name) ? pc.get() : nullptr);
    krylov::Vec ones = engine.new_vec();
    for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
    krylov::Vec b = engine.new_vec();
    engine.apply_op(ones, b);
    krylov::Vec x = engine.new_vec();
    const krylov::SolveStats stats =
        krylov::make_solver(name)->solve(engine, b, x, opts);
    std::printf("%-14s %10zu %12.3e %12.3e %8s\n", name.c_str(),
                stats.iterations, stats.final_rnorm, stats.true_residual,
                stats.converged ? "ok"
                                : (stats.stagnated ? "stall" : "maxit"));
  }
  return 0;
}
