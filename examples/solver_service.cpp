// Tour of the service layer: one warm Session serving a stream of jobs.
//
// Demonstrates the full lifecycle OPERATIONS.md documents:
//   1. cold setup -- a service::Session partitions the operator, builds every
//      rank's DistCsr / matrix-powers closure / preconditioner ONCE and
//      spawns the persistent rank team;
//   2. admission -- a mixed stream of SolveContexts goes through an
//      AdmissionQueue; compatible scg-sspmv requests leave it as one batched
//      multi-RHS solve, the pipe-pscg request runs singly on the same warm
//      team;
//   3. resumability -- a step-limited context is resubmitted until it
//      converges, each submission restarting from the current iterate;
//   4. observability -- setup counters prove warm solves build nothing,
//      --metrics-out exports the session surface via
//      obs::metrics::register_session, --trace-requests-out writes one
//      merged Chrome/Perfetto trace per request, --alerts-out streams
//      anomaly alerts as JSONL, and --metrics-period-ms samples live
//      metrics while the stream drains (tail them with
//      tools/pipescg_top.py);
//   5. fault drills -- --fault-spec injects faults into the rank team
//      (e.g. "rank=1:kind=slow:factor=16" makes rank 1 a straggler the
//      detector must blame), and --deadline-ms gives every streamed job a
//      start deadline so expiry paths are exercised.
//
//   ./solver_service [--n 20] [--ranks 2] [--jobs 6] [--s 3] [--rtol 1e-6]
//                    [--step-limit 12] [--metrics-out metrics.prom]
//                    [--trace-requests-out traces/] [--alerts-out a.jsonl]
//                    [--metrics-period-ms 50] [--fault-spec SPEC]
//                    [--deadline-ms 0]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "pipescg/pipescg.hpp"

using namespace pipescg;

namespace {

std::vector<double> make_rhs(const sparse::CsrMatrix& a, std::size_t j) {
  std::vector<double> xstar(a.rows());
  for (std::size_t i = 0; i < xstar.size(); ++i)
    xstar[i] = 1.0 + 0.5 * std::sin(static_cast<double>(i + 7 * j + 1));
  std::vector<double> b(a.rows(), 0.0);
  a.apply(xstar, b);
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("solver_service",
                "service-layer demo: warm session, admission-queue batching, "
                "resumable jobs");
  cli.add_option("n", "20", "grid size per dimension (thermal2-like 2D)");
  cli.add_option("ranks", "2", "persistent rank-team size");
  cli.add_option("jobs", "6", "batchable scg-sspmv jobs in the stream");
  cli.add_option("s", "3", "s-step depth");
  cli.add_option("rtol", "1e-6", "relative tolerance");
  cli.add_option("step-limit", "12",
                 "iteration budget per submission of the resumable job");
  cli.add_option("metrics-out", "",
                 "write the session's Prometheus exposition here");
  cli.add_option("metrics-period-ms", "0",
                 "sample live metrics to --metrics-out every PERIOD ms "
                 "while draining (0 = final snapshot only)");
  cli.add_option("trace-requests-out", "",
                 "directory for per-request merged Perfetto trace files");
  cli.add_option("alerts-out", "", "append anomaly alerts as JSONL here");
  cli.add_option("fault-spec", "",
                 "inject faults into the rank team, e.g. "
                 "rank=1:kind=slow:factor=16");
  cli.add_option("deadline-ms", "0",
                 "start deadline for every streamed job (0 = none)");
  cli.add_option("straggler-window", "4",
                 "checkpoints per straggler-detector window");
  cli.add_option("straggler-consecutive", "2",
                 "consecutive blames before a straggler alert fires");
  cli.add_option("straggler-dominance", "0.25",
                 "the suspect's window wait must be at most this fraction "
                 "of the largest rank wait (noise guard)");
  if (!cli.parse(argc, argv)) return 0;

  const std::size_t n = static_cast<std::size_t>(cli.integer("n"));
  const std::size_t jobs = static_cast<std::size_t>(cli.integer("jobs"));
  const sparse::CsrMatrix a = sparse::make_thermal2_like(n, n);

  krylov::SolverOptions opts;
  opts.s = static_cast<int>(cli.integer("s"));
  opts.rtol = cli.real("rtol");

  service::SessionConfig config;
  config.ranks = static_cast<int>(cli.integer("ranks"));
  config.s = opts.s;
  if (!cli.str("fault-spec").empty())
    config.fault_specs = fault::parse_fault_specs(cli.str("fault-spec"));

  // 1. Cold setup, paid once.
  service::Session session(a, config);

  // Observability: one registry backs both the live cells the session
  // updates while draining and the end-of-run session surface; the sampler
  // snapshots it to --metrics-out on a period so `pipescg_top.py` (or
  // `watch cat`) can follow the run live.
  obs::metrics::Registry registry;
  std::unique_ptr<obs::tracing::TraceSink> traces;
  std::unique_ptr<obs::anomaly::AlertSink> alerts;
  std::unique_ptr<obs::metrics::MetricsSampler> sampler;
  if (!cli.str("trace-requests-out").empty())
    traces = std::make_unique<obs::tracing::TraceSink>(
        cli.str("trace-requests-out"));
  if (!cli.str("alerts-out").empty())
    alerts = std::make_unique<obs::anomaly::AlertSink>(cli.str("alerts-out"));
  const double period_ms = cli.real("metrics-period-ms");
  if (period_ms > 0.0 && !cli.str("metrics-out").empty()) {
    sampler = std::make_unique<obs::metrics::MetricsSampler>(
        registry, cli.str("metrics-out"), period_ms);
    sampler->start();
  }
  service::Observability obs;
  obs.traces = traces.get();
  obs.alerts = alerts.get();
  obs.registry = &registry;
  obs.sampler = sampler.get();
  obs.straggler.window =
      static_cast<std::size_t>(cli.integer("straggler-window"));
  obs.straggler.consecutive =
      static_cast<int>(cli.integer("straggler-consecutive"));
  obs.straggler.dominance = cli.real("straggler-dominance");
  session.set_observability(obs);
  std::printf("session: %zu unknowns on %d ranks, setup %.3fms "
              "(%zu dist builds, %zu pc builds, %zu team spawn)\n",
              session.unknowns(), session.ranks(),
              1e3 * session.setup_seconds(),
              session.setup_counters().dist_builds,
              session.setup_counters().pc_builds,
              session.setup_counters().team_spawns);

  // 2. Mixed stream: `jobs` batchable requests plus one incompatible one.
  std::vector<std::unique_ptr<service::SolveContext>> stream;
  for (std::size_t j = 0; j < jobs; ++j)
    stream.push_back(std::make_unique<service::SolveContext>(
        "scg-sspmv", make_rhs(a, j), opts));
  stream.push_back(std::make_unique<service::SolveContext>(
      "pipe-pscg", make_rhs(a, jobs), opts));

  const double deadline_ms = cli.real("deadline-ms");
  if (deadline_ms > 0.0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(static_cast<long long>(1e3 * deadline_ms));
    for (auto& ctx : stream) ctx->set_deadline(deadline);
  }

  service::AdmissionQueue queue;
  for (auto& ctx : stream) queue.submit(ctx.get());
  const std::size_t executed = session.drain(queue);
  std::printf("drained %zu jobs in %zu team runs (%zu batched pops)\n",
              executed, session.team_runs(), queue.batches());
  for (std::size_t j = 0; j < stream.size(); ++j) {
    const service::SolveContext& ctx = *stream[j];
    std::printf("  job %zu [%-9s]: %s, %zu iterations, rnorm %.2e, "
                "trace %llu\n",
                j, ctx.method().c_str(), to_string(ctx.state()),
                ctx.stats().iterations, ctx.stats().final_rnorm,
                static_cast<unsigned long long>(ctx.trace_id()));
  }

  // 3. Resumable job: a step-limited context resubmitted to convergence.
  service::SolveContext resumable("scg-sspmv", make_rhs(a, jobs + 1), opts);
  resumable.set_step_limit(
      static_cast<std::size_t>(cli.integer("step-limit")));
  while (!resumable.converged() &&
         resumable.total_iterations() < opts.max_iterations) {
    session.solve(resumable);
    if (resumable.state() == service::JobState::kFailed) {
      std::printf("resumable job failed: %s\n", resumable.error().c_str());
      return 1;
    }
  }
  std::printf("resumable job: converged after %zu submissions, %zu total "
              "iterations\n",
              resumable.submissions(), resumable.total_iterations());

  // 4. The cache contract, visibly: nothing was rebuilt after setup.
  const service::SetupCounters& c = session.setup_counters();
  std::printf("after %zu solves: %zu dist builds, %zu pc builds, %zu team "
              "spawns (unchanged), %zu warm hits\n",
              session.solves(), c.dist_builds, c.pc_builds, c.team_spawns,
              c.warm_hits);

  if (traces != nullptr)
    std::printf("wrote %zu merged request trace(s) under %s\n",
                traces->written(), traces->dir().c_str());
  if (alerts != nullptr) {
    std::printf("emitted %zu alert(s) to %s\n", alerts->emitted(),
                alerts->path().c_str());
    for (const obs::anomaly::Alert& alert : alerts->alerts())
      std::printf("  [%s] %s: %s\n", alert.severity.c_str(),
                  alert.family.c_str(), alert.message.c_str());
  }

  if (sampler != nullptr) sampler->stop();
  if (!cli.str("metrics-out").empty()) {
    // Final snapshot folds in the end-of-run session surface next to the
    // live cells the sampler has been publishing all along.
    obs::metrics::register_session(registry, session.snapshot(),
                                   {{"method", "scg-sspmv"}});
    registry.write_textfile(cli.str("metrics-out"));
    std::printf("wrote metrics exposition to %s\n",
                cli.str("metrics-out").c_str());
  }
  return 0;
}
