// Pressure-solve workflow: implicit heat/pressure equation time stepping.
//
// The paper's motivation (Section I, VI-E) is PDE applications -- OpenFOAM
// pressure Poisson solves with rtol 1e-2, PETSc applications with 1e-5.
// This example integrates du/dt = laplacian(u) + f implicitly on a 3D grid:
// every time step solves (I + dt A) u_new = u_old + dt f with a CG variant,
// reusing the previous step's solution as the initial guess -- the setting
// where per-solve allreduce savings accumulate across thousands of steps.
//
//   ./poisson3d [--n 24] [--steps 5] [--dt 0.1] [--method pipe-pscg]
#include <cmath>
#include <cstdio>

#include "pipescg/pipescg.hpp"

using namespace pipescg;

int main(int argc, char** argv) {
  CliParser cli("poisson3d", "implicit diffusion stepping with CG variants");
  cli.add_option("n", "24", "grid points per dimension");
  cli.add_option("steps", "5", "time steps");
  cli.add_option("dt", "0.1", "time step size");
  cli.add_option("method", "pipe-pscg", "solver name");
  cli.add_option("rtol", "1e-6", "per-step relative tolerance");
  if (!cli.parse(argc, argv)) return 0;

  const std::size_t n = static_cast<std::size_t>(cli.integer("n"));
  const double dt = cli.real("dt");
  const int steps = static_cast<int>(cli.integer("steps"));

  // System matrix M = I + dt * A27 (27-pt Laplacian), assembled once.
  const sparse::CsrMatrix a27 =
      sparse::assemble_stencil3d(sparse::stencil_poisson27(), n, n, n, "A27");
  sparse::CooBuilder builder(a27.rows(), a27.cols());
  {
    const auto rp = a27.row_ptr();
    const auto ci = a27.col_indices();
    const auto v = a27.values();
    for (std::size_t i = 0; i < a27.rows(); ++i) {
      builder.add(i, i, 1.0);
      for (auto k = rp[i]; k < rp[i + 1]; ++k)
        builder.add(i,
                    static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]),
                    dt * v[static_cast<std::size_t>(k)]);
    }
  }
  const sparse::CsrMatrix system = builder.build("I+dtA");

  precond::SsorPreconditioner pc(system);
  krylov::SerialEngine engine(system, &pc);
  const auto solver = krylov::make_solver(cli.str("method"));

  // Initial condition: a hot blob in the middle; forcing: none.
  krylov::Vec u = engine.new_vec();
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) {
        const double dx = (static_cast<double>(i) / n) - 0.5;
        const double dy = (static_cast<double>(j) / n) - 0.5;
        const double dz = (static_cast<double>(k) / n) - 0.5;
        u[(k * n + j) * n + i] =
            std::exp(-40.0 * (dx * dx + dy * dy + dz * dz));
      }

  krylov::SolverOptions opts;
  opts.rtol = cli.real("rtol");
  opts.compute_true_residual = false;

  std::printf("implicit diffusion: %zu^3 grid, dt=%.3g, %d steps, %s\n", n,
              dt, steps, cli.str("method").c_str());
  double energy_prev = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) energy_prev += u[i] * u[i];

  std::size_t total_iterations = 0;
  for (int step = 0; step < steps; ++step) {
    // rhs = u_old; initial guess = u_old (warm start).
    krylov::Vec rhs = engine.new_vec();
    engine.copy(u, rhs);
    const krylov::SolveStats stats = solver->solve(engine, rhs, u, opts);
    if (!stats.converged) {
      std::printf("step %d failed to converge\n", step);
      return 1;
    }
    total_iterations += stats.iterations;
    double energy = 0.0, umax = 0.0;
    for (std::size_t i = 0; i < u.size(); ++i) {
      energy += u[i] * u[i];
      umax = std::max(umax, std::abs(u[i]));
    }
    std::printf("  step %d: %4zu iterations, max u = %.4f, energy = %.5f\n",
                step, stats.iterations, umax, energy);
    // Diffusion with Dirichlet walls must dissipate energy monotonically.
    if (energy > energy_prev * (1.0 + 1e-10)) {
      std::printf("energy grew: unphysical result\n");
      return 1;
    }
    energy_prev = energy;
  }
  std::printf("total CG-equivalent iterations: %zu (avg %.1f per step)\n",
              total_iterations,
              static_cast<double>(total_iterations) / steps);
  return 0;
}
