// Quickstart: solve a 3D Poisson problem with PIPE-PsCG in ~30 lines.
//
//   ./quickstart [--n 32] [--method pipe-pscg] [--s 3] [--rtol 1e-6]
//
// Builds the 125-point operator A on an n^3 grid, manufactures b = A x*
// with x* = ones, solves from x0 = 0, and reports convergence plus the true
// solution error.
#include <cmath>
#include <cstdio>

#include "pipescg/pipescg.hpp"

using namespace pipescg;

int main(int argc, char** argv) {
  CliParser cli("quickstart", "solve a 3D Poisson problem with PIPE-PsCG");
  cli.add_option("n", "32", "grid points per dimension");
  cli.add_option("method", "pipe-pscg", "solver (see krylov::solver_names)");
  cli.add_option("s", "3", "s-step depth");
  cli.add_option("rtol", "1e-6", "relative tolerance");
  if (!cli.parse(argc, argv)) return 0;

  // 1. The operator: a 125-point stencil Poisson matrix (assembled CSR).
  const sparse::CsrMatrix a =
      sparse::make_poisson125_csr(static_cast<std::size_t>(cli.integer("n")));

  // 2. A preconditioner and an engine binding both together.
  precond::JacobiPreconditioner pc(a);
  krylov::SerialEngine engine(a, &pc);

  // 3. Manufactured right-hand side: b = A * ones.
  krylov::Vec ones = engine.new_vec();
  for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
  krylov::Vec b = engine.new_vec();
  engine.apply_op(ones, b);

  // 4. Solve.
  krylov::Vec x = engine.new_vec();
  krylov::SolverOptions opts;
  opts.rtol = cli.real("rtol");
  opts.s = static_cast<int>(cli.integer("s"));
  opts.compute_true_residual = true;
  const auto solver = krylov::make_solver(cli.str("method"));
  WallTimer timer;
  const krylov::SolveStats stats = solver->solve(engine, b, x, opts);
  const double seconds = timer.seconds();

  // 5. Report.
  double err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    err = std::max(err, std::abs(x[i] - 1.0));
  std::printf("method        : %s (s=%d)\n", stats.method.c_str(), opts.s);
  std::printf("unknowns      : %zu (nnz %zu)\n", a.rows(), a.nnz());
  std::printf("converged     : %s in %zu iterations (%.3f s)\n",
              stats.converged ? "yes" : "no", stats.iterations, seconds);
  std::printf("residual norm : %.3e (threshold %.3e)\n", stats.final_rnorm,
              opts.rtol * stats.b_norm);
  std::printf("true residual : %.3e\n", stats.true_residual);
  std::printf("max |x - x*|  : %.3e\n", err);
  return stats.converged ? 0 : 1;
}
