// Tour of the SPMD runtime: run the same solve on 1..4 in-process ranks and
// show that the distributed execution (real halo exchanges, real
// non-blocking allreduces) reproduces the serial result bit-for-bit in
// iteration counts and to rounding in the solution.
//
//   ./runtime_tour [--n 48] [--problem thermal2|poisson3d|ecology2]
//                  [--method pipe-pscg] [--max-ranks 4] [--mpk on|off]
//                  [--profile] [--analyze] [--trace-out trace.json]
//                  [--report-out report.json]
//                  [--telemetry-out telemetry.jsonl]
//                  [--metrics-out metrics.prom] [--metrics-period-ms 250]
//
// With --profile, every SPMD run is measured with the per-rank kernel
// profiler (see obs/) and a compute/halo/wait breakdown is printed.
// --analyze (implies --profile) additionally reconstructs the span DAG of
// each SPMD run and prints the measured overlap summary: how much of the
// non-blocking allreduce wait was hidden under compute, the exposed
// remainder, per-rank imbalance, and the critical-path attribution
// (obs/analysis.hpp).  --telemetry-out records one JSONL line per CG
// iteration (residual norm, alpha/beta, s, recoveries) from rank 0 of the
// largest rank count.
// --mpk on attaches a depth-s matrix-powers kernel to the SPMD engines so
// s-step basis builds cost one halo-exchange epoch instead of s (compare
// the halo_epochs counter across the two modes; see EXPERIMENTS.md).  The
// fused path only engages for unpreconditioned s-step methods (pipe-scg,
// scg-sspmv, or pipe-pscg without its PC): a real preconditioner interleaves
// M^{-1} between the SPMVs, which no matrix-powers kernel can fuse.
// --trace-out writes a Chrome trace-event file for the largest rank count
// containing the *measured* per-rank tracks next to the *modeled*
// machine-model schedule of the same solve -- load it in Perfetto to see
// how well the analytic timeline predicts the real overlap.  --report-out
// writes a structured JSON report including the serial-vs-SPMD kernel
// counter cross-check.
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "pipescg/pipescg.hpp"

using namespace pipescg;

int main(int argc, char** argv) {
  CliParser cli("runtime_tour",
                "SPMD runtime demo: serial vs distributed execution");
  cli.add_option("n", "48", "grid size per dimension");
  cli.add_option("problem", "thermal2",
                 "operator: thermal2 (9-pt 2D jumps), poisson3d (125-pt 3D), "
                 "ecology2 (5-pt 2D near-singular)");
  cli.add_option("method", "pipe-pscg", "solver name");
  cli.add_option("rtol", "1e-8",
                 "relative tolerance (use 1e-2 for ecology2, paper Fig. 2)");
  cli.add_option("max-ranks", "4", "largest rank count to demo");
  cli.add_mpk_option();
  cli.add_format_option();
  cli.add_stability_options();
  cli.add_observability_options();
  cli.add_fault_options();
  if (!cli.parse(argc, argv)) return 0;

  // Faults apply to the SPMD runs only; the serial reference stays clean.
  const std::vector<fault::FaultSpec> fault_specs =
      fault::parse_fault_specs(cli.str("fault-spec"));
  const par::ScopedWatchdog watchdog(cli.real("watchdog-ms"));

  const std::size_t n = static_cast<std::size_t>(cli.integer("n"));
  const std::string method = cli.str("method");
  const bool use_mpk = cli.mpk_enabled();
  const sparse::SparseFormat format =
      sparse::parse_sparse_format(cli.str("format"));
  const bool analyze = cli.flag("analyze");
  const std::string metrics_out = cli.str("metrics-out");
  const double metrics_period_ms = cli.real("metrics-period-ms");
  const bool profile = cli.flag("profile") || analyze ||
                       !cli.str("trace-out").empty() ||
                       !cli.str("report-out").empty() || !metrics_out.empty();
  const std::string problem = cli.str("problem");
  const sparse::CsrMatrix a = [&] {
    if (problem == "thermal2") return sparse::make_thermal2_like(n, n);
    if (problem == "poisson3d") return sparse::make_poisson125_csr(n);
    if (problem == "ecology2") return sparse::make_ecology2_like(n, n);
    throw Error("unknown --problem '" + problem +
                "' (thermal2|poisson3d|ecology2)");
  }();
  const bool use_pc = krylov::solver_uses_preconditioner(method);

  krylov::SolverOptions opts;
  opts.rtol = cli.real("rtol");
  // Tight truth anchoring: on ill-conditioned problems the pipelined
  // recurrences are rounding-sensitive, and different reduction orders can
  // otherwise take visibly different trajectories.
  opts.replacement_period = 4;
  // --basis / --replace-every / --gap-tol override the defaults above.
  krylov::apply_stability_cli(cli, opts);
  if (opts.replacement_period == 0) opts.replacement_period = 4;

  if (use_mpk && use_pc)
    std::printf("note: %s uses a preconditioner; the matrix-powers kernel "
                "only fuses unpreconditioned power blocks, so --mpk on will "
                "not change the halo pattern here\n",
                method.c_str());

  {
    // Modeled format advisory (sim::suggest_format): which local-SPMV
    // storage the machine model prefers at the demo's rank count.
    const sim::MachineModel machine = sim::MachineModel::cray_xc40_like();
    const int ranks = static_cast<int>(cli.integer("max-ranks"));
    const sim::FormatRecommendation rec =
        sim::suggest_format(machine, a.stats(), ranks);
    std::printf("format      : running %s; model suggests %s at %d ranks "
                "(sell speedup %.2fx)\n",
                sparse::to_string(format).c_str(),
                sparse::to_string(rec.format).c_str(), ranks,
                rec.sell_speedup);
  }

  // Reference: serial engine, with the event trace recorded so the SPMD
  // profiler's counters can be cross-checked and the machine model can
  // render the modeled schedule.
  sim::EventTrace serial_trace;
  std::vector<double> x_serial;
  std::size_t iters_serial = 0;
  krylov::SolveStats serial_stats;
  double serial_wall = 0.0;
  {
    precond::JacobiPreconditioner pc(a);
    krylov::SerialEngine engine(a, use_pc ? &pc : nullptr, &serial_trace);
    krylov::Vec ones = engine.new_vec();
    for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
    krylov::Vec b = engine.new_vec();
    engine.apply_op(ones, b);
    krylov::Vec x = engine.new_vec();
    {
      ScopedTimer timer(serial_wall);
      serial_stats = krylov::make_solver(method)->solve(engine, b, x, opts);
    }
    iters_serial = serial_stats.iterations;
    x_serial.assign(x.data(), x.data() + x.size());
    std::printf("serial      : %zu unknowns, %zu iterations, converged=%s\n",
                a.rows(), serial_stats.iterations,
                serial_stats.converged ? "yes" : "no");
  }
  const sim::EventTrace::Counters serial_counters = serial_trace.counters();

  // Kept from the largest rank count for the exports.
  std::unique_ptr<obs::SolveProfile> last_profile;
  std::unique_ptr<obs::ConvergenceTelemetry> last_telemetry;
  krylov::SolveStats last_stats;
  int last_ranks = 0;
  double last_max_diff = 0.0;
  std::size_t last_injected = 0;

  // Unified metrics registry (--metrics-out): live gauges are fed from rank
  // 0's checkpoint hook while a solve runs, the sampler (if a period is set)
  // rewrites the exposition file mid-solve, and the full profile/stats/fault
  // surfaces are registered once the kept run finishes.
  const obs::metrics::Labels metric_labels = {{"method", method},
                                              {"problem", problem}};
  auto registry = !metrics_out.empty()
                      ? std::make_unique<obs::metrics::Registry>()
                      : nullptr;
  auto live = registry ? std::make_unique<obs::metrics::LiveSolve>(
                             *registry, metric_labels)
                       : nullptr;
  auto sampler = registry && metrics_period_ms > 0.0
                     ? std::make_unique<obs::metrics::MetricsSampler>(
                           *registry, metrics_out, metrics_period_ms)
                     : nullptr;
  if (sampler) sampler->start();

  for (int ranks = 2; ranks <= cli.integer("max-ranks"); ++ranks) {
    const sparse::Partition part(a.rows(), ranks);
    std::vector<double> x_dist(a.rows(), 0.0);
    std::size_t iters_dist = 0;
    krylov::SolveStats dist_stats;
    std::mutex mutex;
    auto solve_profile =
        profile ? std::make_unique<obs::SolveProfile>(ranks) : nullptr;
    // Per-iteration convergence telemetry, recorded on rank 0 only (the
    // scalar recurrences are replicated, so every rank would log the same
    // records).
    auto telemetry = !cli.str("telemetry-out").empty()
                         ? std::make_unique<obs::ConvergenceTelemetry>(method)
                         : nullptr;
    std::vector<std::size_t> injected(static_cast<std::size_t>(ranks), 0);
    try {
    par::Team::run(ranks, [&](par::Comm& comm) {
      const obs::ConvergenceTelemetry::Install telemetry_install(
          comm.rank() == 0 ? telemetry.get() : nullptr);
      // Live metrics share the telemetry discipline: the scalar recurrences
      // are replicated, so rank 0's checkpoints describe the whole solve.
      const obs::metrics::LiveSolve::Install live_install(
          comm.rank() == 0 ? live.get() : nullptr);
      fault::Injector injector(fault_specs, comm.rank());
      const fault::Injector::Install install(
          fault_specs.empty() ? nullptr : &injector);
      const sparse::DistCsr dist(a, part, comm.rank(), format);
      const std::unique_ptr<sparse::MatrixPowers> mpk =
          use_mpk ? std::make_unique<sparse::MatrixPowers>(
                        a, part, comm.rank(), opts.s, format)
                  : nullptr;
      const std::size_t begin = part.begin(comm.rank());
      const std::size_t len = part.local_size(comm.rank());
      const std::vector<double> full_diag = a.diagonal();
      std::vector<double> local_diag(
          full_diag.begin() + static_cast<std::ptrdiff_t>(begin),
          full_diag.begin() + static_cast<std::ptrdiff_t>(begin + len));
      precond::JacobiPreconditioner local_pc(std::move(local_diag), a.stats());
      krylov::SpmdEngine engine(
          comm, dist, use_pc ? &local_pc : nullptr,
          solve_profile ? &solve_profile->rank(comm.rank()) : nullptr,
          mpk.get());
      krylov::Vec ones = engine.new_vec();
      for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
      krylov::Vec b = engine.new_vec();
      engine.apply_op(ones, b);
      krylov::Vec x = engine.new_vec();
      const auto stats =
          krylov::make_solver(method)->solve(engine, b, x, opts);
      std::lock_guard<std::mutex> lock(mutex);
      for (std::size_t i = 0; i < len; ++i) x_dist[begin + i] = x[i];
      injected[static_cast<std::size_t>(comm.rank())] = injector.injected();
      if (comm.rank() == 0) {
        iters_dist = stats.iterations;
        dist_stats = stats;
        if (!stats.converged)
          std::printf("%d ranks     : DID NOT CONVERGE\n", comm.size());
      }
    });
    } catch (const Error& e) {
      // An injected rank death (or the watchdog on its surviving peers)
      // unwinds the team; report the diagnostic and move on.
      std::printf("%d ranks     : solve aborted: %s\n", ranks, e.what());
      continue;
    }
    if (!fault_specs.empty()) {
      std::size_t fired = 0;
      for (std::size_t f : injected) fired += f;
      std::printf(
          "  faults     : %zu injected, %zu recoveries, final s = %d, "
          "converged=%s\n",
          fired, dist_stats.recoveries, dist_stats.final_s,
          dist_stats.converged ? "yes" : "no");
    }
    double max_diff = 0.0;
    for (std::size_t i = 0; i < x_serial.size(); ++i)
      max_diff = std::max(max_diff, std::abs(x_serial[i] - x_dist[i]));
    std::printf(
        "%d ranks     : %zu iterations (serial: %zu), max |dx| = %.2e\n",
        ranks, iters_dist, iters_serial, max_diff);
    if (solve_profile) {
      const auto& c0 = solve_profile->rank(0).counters();
      const bool match = solve_profile->counters_uniform() &&
                         c0.spmvs == serial_counters.spmvs &&
                         c0.pc_applies == serial_counters.pc_applies &&
                         c0.allreduces == serial_counters.allreduces &&
                         c0.iterations == serial_counters.iterations;
      // Holds under --mpk on too: the matrix-powers kernel recomputes every
      // redundant ghost row in its owner's summation order, so the fused
      // path is bitwise identical to the chained one.
      std::printf(
          "  counters   : spmvs=%zu pc=%zu allreduces=%zu iters=%zu "
          "(serial trace parity: %s)\n",
          c0.spmvs, c0.pc_applies, c0.allreduces, c0.iterations,
          match ? "ok" : "MISMATCH");
      std::printf(
          "  halo       : epochs=%zu mpk_blocks=%zu messages=%zu "
          "volume=%zu doubles (rank 0)\n",
          c0.halo_epochs, c0.mpk_blocks, c0.halo_messages,
          c0.halo_volume_doubles);
      std::fputs(solve_profile->summary().c_str(), stdout);
      if (analyze) {
        // One-screen measured-overlap digest: per-rank hiding efficiency,
        // exposed wait, and where the critical path actually went.
        const obs::OverlapReport overlap = obs::analyze_overlap(*solve_profile);
        std::fputs(obs::overlap_summary(overlap).c_str(), stdout);
      }
      last_profile = std::move(solve_profile);
      last_stats = dist_stats;
      last_ranks = ranks;
      last_max_diff = max_diff;
      last_injected = 0;
      for (std::size_t f : injected) last_injected += f;
    }
    if (telemetry) last_telemetry = std::move(telemetry);
  }
  std::printf("\n(rank counts change only the reduction rounding; with "
              "truth anchoring the trajectories agree to rounding)\n");

  if (registry) {
    // Post-solve registration of the kept run's full surface: stats flags,
    // per-rank counters + span totals + merged histograms + throughput, and
    // the fault-harness numbers (same values the JSON report carries).
    obs::metrics::register_stats(*registry, last_stats, metric_labels);
    if (last_profile)
      obs::metrics::register_profile(*registry, *last_profile, metric_labels);
    obs::metrics::register_fault(*registry, last_injected,
                                 last_stats.recoveries,
                                 par::comm_watchdog_trips(), metric_labels);
  }

  if ((!cli.str("trace-out").empty() || !cli.str("report-out").empty()) &&
      !last_profile)
    std::printf("no SPMD run was profiled (--max-ranks < 2): skipping "
                "--trace-out/--report-out\n");

  if (!cli.str("trace-out").empty() && last_profile) {
    obs::ChromeTraceBuilder builder;
    obs::add_profile(builder, *last_profile, /*pid=*/0,
                     "measured: " + method + " on " +
                         std::to_string(last_ranks) + " in-process ranks");
    std::vector<sim::ScheduledSpan> schedule;
    const sim::Timeline timeline(sim::MachineModel::cray_xc40_like());
    timeline.evaluate(serial_trace, last_ranks, &schedule);
    obs::add_schedule(builder, schedule, /*pid=*/1,
                      "modeled: " + method + " at " +
                          std::to_string(last_ranks) + " ranks (machine model)");
    obs::json::write_file(cli.str("trace-out"), builder.build());
    std::printf("wrote Chrome trace to %s (load in Perfetto)\n",
                cli.str("trace-out").c_str());
  }

  if (!cli.str("report-out").empty() && last_profile) {
    obs::json::Value report = obs::json::Value::object();
    report.set("program", "runtime_tour");
    report.set("method", method);
    report.set("problem", problem);
    report.set("mpk", use_mpk);
    report.set("format", sparse::to_string(format));
    report.set("unknowns", a.rows());
    report.set("ranks", last_ranks);
    report.set("max_abs_diff_vs_serial", last_max_diff);
    report.set("serial_wall_seconds", serial_wall);
    report.set("fault_spec", cli.str("fault-spec"));
    obs::json::Value serial = obs::json::Value::object();
    serial.set("stats", obs::stats_to_json(serial_stats));
    serial.set("trace_counters", obs::counters_to_json(serial_counters));
    report.set("serial", std::move(serial));
    // Overlap + model-vs-measured drift for the kept (largest) rank count:
    // the machine model prices the serial event trace at last_ranks and the
    // drift report diffs that schedule against the measured spans.
    const obs::OverlapReport overlap = obs::analyze_overlap(*last_profile);
    std::vector<sim::ScheduledSpan> drift_schedule;
    const sim::Timeline drift_timeline(sim::MachineModel::cray_xc40_like());
    drift_timeline.evaluate(serial_trace, last_ranks, &drift_schedule);
    const obs::DriftReport drift =
        obs::drift_report(drift_schedule, *last_profile, overlap);
    obs::json::Value spmd = obs::solve_report(
        last_stats, last_profile.get(), &overlap, &drift, registry.get());
    const auto& c0 = last_profile->rank(0).counters();
    report.set("counters_match_serial_trace",
               last_profile->counters_uniform() &&
                   c0.spmvs == serial_counters.spmvs &&
                   c0.pc_applies == serial_counters.pc_applies &&
                   c0.allreduces == serial_counters.allreduces &&
                   c0.iterations == serial_counters.iterations);
    report.set("spmd", std::move(spmd));
    obs::json::write_file(cli.str("report-out"), report);
    std::printf("wrote solve report to %s\n", cli.str("report-out").c_str());
  }

  if (!cli.str("telemetry-out").empty()) {
    if (last_telemetry) {
      last_telemetry->write_jsonl(cli.str("telemetry-out"));
      std::printf("wrote %zu telemetry records to %s\n",
                  last_telemetry->size(), cli.str("telemetry-out").c_str());
    } else {
      std::printf("no SPMD run completed: skipping --telemetry-out\n");
    }
  }

  if (registry) {
    if (sampler) {
      sampler->stop();  // final flush includes the post-solve registrations
      std::printf("wrote %zu metrics snapshots to %s\n", sampler->samples(),
                  metrics_out.c_str());
    } else {
      registry->write_textfile(metrics_out);
      std::printf("wrote metrics exposition to %s\n", metrics_out.c_str());
    }
  }
  return 0;
}
