// Tour of the SPMD runtime: run the same solve on 1..4 in-process ranks and
// show that the distributed execution (real halo exchanges, real
// non-blocking allreduces) reproduces the serial result bit-for-bit in
// iteration counts and to rounding in the solution.
//
//   ./runtime_tour [--n 48] [--method pipe-pscg] [--max-ranks 4]
#include <cmath>
#include <cstdio>
#include <mutex>

#include "pipescg/pipescg.hpp"

using namespace pipescg;

int main(int argc, char** argv) {
  CliParser cli("runtime_tour",
                "SPMD runtime demo: serial vs distributed execution");
  cli.add_option("n", "48", "2D grid size (n x n unknowns)");
  cli.add_option("method", "pipe-pscg", "solver name");
  cli.add_option("max-ranks", "4", "largest rank count to demo");
  if (!cli.parse(argc, argv)) return 0;

  const std::size_t n = static_cast<std::size_t>(cli.integer("n"));
  const std::string method = cli.str("method");
  const sparse::CsrMatrix a = sparse::make_thermal2_like(n, n);
  const bool use_pc = krylov::solver_uses_preconditioner(method);

  krylov::SolverOptions opts;
  opts.rtol = 1e-8;
  // Tight truth anchoring: on ill-conditioned problems the pipelined
  // recurrences are rounding-sensitive, and different reduction orders can
  // otherwise take visibly different trajectories.
  opts.replacement_period = 4;

  // Reference: serial engine.
  std::vector<double> x_serial;
  std::size_t iters_serial = 0;
  {
    precond::JacobiPreconditioner pc(a);
    krylov::SerialEngine engine(a, use_pc ? &pc : nullptr);
    krylov::Vec ones = engine.new_vec();
    for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
    krylov::Vec b = engine.new_vec();
    engine.apply_op(ones, b);
    krylov::Vec x = engine.new_vec();
    const auto stats = krylov::make_solver(method)->solve(engine, b, x, opts);
    iters_serial = stats.iterations;
    x_serial.assign(x.data(), x.data() + x.size());
    std::printf("serial      : %zu unknowns, %zu iterations, converged=%s\n",
                a.rows(), stats.iterations, stats.converged ? "yes" : "no");
  }

  for (int ranks = 2; ranks <= cli.integer("max-ranks"); ++ranks) {
    const sparse::Partition part(a.rows(), ranks);
    std::vector<double> x_dist(a.rows(), 0.0);
    std::size_t iters_dist = 0;
    std::mutex mutex;
    par::Team::run(ranks, [&](par::Comm& comm) {
      const sparse::DistCsr dist(a, part, comm.rank());
      const std::size_t begin = part.begin(comm.rank());
      const std::size_t len = part.local_size(comm.rank());
      const std::vector<double> full_diag = a.diagonal();
      std::vector<double> local_diag(
          full_diag.begin() + static_cast<std::ptrdiff_t>(begin),
          full_diag.begin() + static_cast<std::ptrdiff_t>(begin + len));
      precond::JacobiPreconditioner local_pc(std::move(local_diag), a.stats());
      krylov::SpmdEngine engine(comm, dist, use_pc ? &local_pc : nullptr);
      krylov::Vec ones = engine.new_vec();
      for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
      krylov::Vec b = engine.new_vec();
      engine.apply_op(ones, b);
      krylov::Vec x = engine.new_vec();
      const auto stats =
          krylov::make_solver(method)->solve(engine, b, x, opts);
      std::lock_guard<std::mutex> lock(mutex);
      for (std::size_t i = 0; i < len; ++i) x_dist[begin + i] = x[i];
      if (comm.rank() == 0) {
        iters_dist = stats.iterations;
        if (!stats.converged)
          std::printf("%d ranks     : DID NOT CONVERGE\n", comm.size());
      }
    });
    double max_diff = 0.0;
    for (std::size_t i = 0; i < x_serial.size(); ++i)
      max_diff = std::max(max_diff, std::abs(x_serial[i] - x_dist[i]));
    std::printf(
        "%d ranks     : %zu iterations (serial: %zu), max |dx| = %.2e\n",
        ranks, iters_dist, iters_serial, max_diff);
  }
  std::printf("\n(rank counts change only the reduction rounding; with "
              "truth anchoring the trajectories agree to rounding)\n");
  return 0;
}
