// Machine-model calibration helper: measures the real per-kernel rates of
// this machine (SPMV, vector ops, the runtime's allreduce) and prints them
// next to the MachineModel defaults, plus the suggested constants to use if
// you want the timeline's single-rank numbers to track this host.
//
// This is the modeled-vs-measured cross-check called out in DESIGN.md
// section 5: the *relative* figures (speedups, crossovers) depend only on
// the model's internal ratios, but absolute single-node seconds can be made
// to match a real host by feeding these measurements back into
// sim::MachineModel.
//
//   ./calibrate [--n 48] [--reps 5]
#include <algorithm>
#include <cstdio>

#include "pipescg/pipescg.hpp"

using namespace pipescg;

namespace {

double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("calibrate", "measure kernel rates for the machine model");
  cli.add_option("n", "48", "grid points per dimension for the test operator");
  cli.add_option("reps", "5", "repetitions (best-of timing)");
  if (!cli.parse(argc, argv)) return 0;
  const std::size_t n = static_cast<std::size_t>(cli.integer("n"));
  const int reps = static_cast<int>(cli.integer("reps"));

  const auto op = sparse::make_poisson125_operator(n);
  const std::size_t rows = op->rows();
  const double nnz = static_cast<double>(op->stats().nnz);
  std::vector<double> x(rows, 1.0), y(rows);

  const sim::MachineModel model = sim::MachineModel::cray_xc40_like();
  std::printf("host calibration on a %zu^3 125-pt operator (%zu rows)\n", n,
              rows);
  std::printf("model defaults: %s\n\n", model.describe().c_str());

  // SPMV: measured flop rate.
  const double t_spmv =
      time_best_of(reps, [&] { op->apply(x, y); });
  const double spmv_flops = 2.0 * nnz;
  std::printf("SPMV        : %8.3f ms  -> %6.2f GF/s sustained\n",
              t_spmv * 1e3, spmv_flops / t_spmv * 1e-9);

  // Vector stream: axpy bandwidth.
  std::vector<double> a(rows, 1.0), b(rows, 2.0);
  const double t_axpy = time_best_of(reps, [&] {
    for (std::size_t i = 0; i < rows; ++i) b[i] += 1.5 * a[i];
  });
  std::printf("AXPY        : %8.3f ms  -> %6.2f GB/s stream\n", t_axpy * 1e3,
              24.0 * static_cast<double>(rows) / t_axpy * 1e-9);

  // Dot product.
  double sink = 0.0;
  const double t_dot = time_best_of(reps, [&] {
    double acc = 0.0;
    for (std::size_t i = 0; i < rows; ++i) acc += a[i] * b[i];
    sink += acc;
  });
  std::printf("DOT         : %8.3f ms  -> %6.2f GF/s\n", t_dot * 1e3,
              2.0 * static_cast<double>(rows) / t_dot * 1e-9);

  // Runtime allreduce (in-process; a real network would be slower).
  for (int ranks : {2, 4}) {
    const double t_allr = time_best_of(reps, [&] {
      par::Team::run(ranks, [&](par::Comm& comm) {
        std::vector<double> v(16, 1.0), out(16);
        for (int i = 0; i < 32; ++i) comm.allreduce_sum(v, out);
      });
    });
    std::printf("ALLREDUCE@%d : %8.3f us per op (in-process runtime)\n", ranks,
                t_allr / 32.0 * 1e6);
  }

  std::printf(
      "\nsuggested MachineModel edits for this host:\n"
      "  flop_rate = %.3g;   // from SPMV\n"
      "  mem_bw    = %.3g;   // from AXPY\n"
      "(network constants must come from the target cluster, not this "
      "host)\n",
      spmv_flops / t_spmv, 24.0 * static_cast<double>(rows) / t_axpy);
  (void)sink;
  return 0;
}
